//! Seeded open-loop load generation for the serving experiments.
//!
//! Generates a Poisson arrival process over a weighted tenant mix — the
//! classic open-loop load model: arrivals do not wait for completions, so
//! overload actually overloads and admission control has something to do.
//! Everything derives from one seed, making a generated campaign a pure
//! value: the same `LoadConfig` always produces the same arrival list,
//! which the job server replays to the same outcomes.

use nbody::ic::IcKind;
use nbody_tt::SimulationConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tt_server::JobRequest;

/// Shape of one synthetic serving workload.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed for arrivals, tenant draws, and size draws.
    pub seed: u64,
    /// Jobs to generate.
    pub jobs: usize,
    /// Relative arrival share per tenant (index = tenant id). Need not be
    /// normalized.
    pub tenant_mix: Vec<f64>,
    /// Mean arrival rate, jobs per virtual second.
    pub rate_hz: f64,
    /// Particle counts drawn uniformly per job.
    pub n_choices: Vec<usize>,
    /// Initial-condition catalog entries drawn uniformly per job.
    pub ic_choices: Vec<IcKind>,
    /// Integration spec shared by all jobs.
    pub sim: SimulationConfig,
    /// Queue deadline per job, virtual seconds.
    pub deadline_s: f64,
    /// Migration budget per job.
    pub max_migrations: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0xe10,
            jobs: 120,
            tenant_mix: vec![3.0, 2.0, 1.0],
            rate_hz: 100.0,
            n_choices: vec![48, 64, 96],
            ic_choices: vec![IcKind::Plummer],
            sim: SimulationConfig {
                eps: 0.05,
                cycles: 2,
                steps_per_cycle: 2,
                dt: 1.0 / 256.0,
                num_cores: 1,
                blocks: None,
            },
            deadline_s: 1.0,
            max_migrations: 2,
        }
    }
}

/// Why a [`LoadConfig`] cannot generate a workload. Returned instead of
/// panicking: load configs arrive from campaign files and CLI flags, and a
/// malformed one is an input error, not a bug in the generator.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadGenError {
    /// `tenant_mix` is empty — there is no tenant to attribute arrivals to.
    EmptyTenantMix,
    /// A tenant weight is negative or NaN.
    InvalidTenantWeight {
        /// Offending tenant index.
        tenant: usize,
        /// The weight as configured.
        weight: f64,
    },
    /// Every tenant weight is zero, so no tenant can ever be drawn.
    ZeroTotalWeight,
    /// `n_choices` is empty — jobs have no particle count to draw.
    EmptySizeChoices,
    /// A particle count of zero (no backend accepts an empty system).
    ZeroParticleCount,
    /// `ic_choices` is empty — jobs have no initial conditions to draw.
    EmptyIcChoices,
    /// `rate_hz` is not a positive finite number.
    InvalidRate(
        /// The rate as configured.
        f64,
    ),
}

impl std::fmt::Display for LoadGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadGenError::EmptyTenantMix => write!(f, "tenant mix is empty"),
            LoadGenError::InvalidTenantWeight { tenant, weight } => {
                write!(f, "tenant {tenant} has invalid weight {weight}")
            }
            LoadGenError::ZeroTotalWeight => write!(f, "all tenant weights are zero"),
            LoadGenError::EmptySizeChoices => write!(f, "particle-count choices are empty"),
            LoadGenError::ZeroParticleCount => write!(f, "particle count choices include 0"),
            LoadGenError::EmptyIcChoices => write!(f, "initial-condition choices are empty"),
            LoadGenError::InvalidRate(r) => {
                write!(f, "arrival rate {r} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for LoadGenError {}

impl LoadConfig {
    /// Check every field the generator depends on, up front.
    ///
    /// # Errors
    /// The first [`LoadGenError`] found, in field order.
    pub fn validate(&self) -> Result<(), LoadGenError> {
        if self.tenant_mix.is_empty() {
            return Err(LoadGenError::EmptyTenantMix);
        }
        for (tenant, &weight) in self.tenant_mix.iter().enumerate() {
            let ok = weight.is_finite() && weight >= 0.0;
            if !ok {
                return Err(LoadGenError::InvalidTenantWeight { tenant, weight });
            }
        }
        if self.tenant_mix.iter().sum::<f64>() <= 0.0 {
            return Err(LoadGenError::ZeroTotalWeight);
        }
        if self.n_choices.is_empty() {
            return Err(LoadGenError::EmptySizeChoices);
        }
        if self.n_choices.contains(&0) {
            return Err(LoadGenError::ZeroParticleCount);
        }
        if self.ic_choices.is_empty() {
            return Err(LoadGenError::EmptyIcChoices);
        }
        if !self.rate_hz.is_finite() || self.rate_hz <= 0.0 {
            return Err(LoadGenError::InvalidRate(self.rate_hz));
        }
        Ok(())
    }
}

/// Generate the arrival list: `(virtual arrival time, request)` pairs in
/// time order.
///
/// # Errors
/// [`LoadGenError`] when the config cannot produce a workload (empty
/// tenant mix or size list, bad weights, non-positive rate).
pub fn generate_load(cfg: &LoadConfig) -> Result<Vec<(f64, JobRequest)>, LoadGenError> {
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let total_weight: f64 = cfg.tenant_mix.iter().sum();
    let mut t = 0.0f64;
    Ok((0..cfg.jobs as u64)
        .map(|job_id| {
            // Exponential inter-arrival times -> Poisson process.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / cfg.rate_hz;
            let mut pick = rng.gen_range(0.0..total_weight);
            let tenant = cfg
                .tenant_mix
                .iter()
                .position(|&w| {
                    pick -= w;
                    pick < 0.0
                })
                .unwrap_or(cfg.tenant_mix.len() - 1);
            let n = cfg.n_choices[rng.gen_range(0..cfg.n_choices.len())];
            let ic = cfg.ic_choices[rng.gen_range(0..cfg.ic_choices.len())];
            (
                t,
                JobRequest {
                    job_id,
                    tenant,
                    n,
                    ic,
                    ic_seed: cfg.seed ^ (0x1c5 << 32) ^ job_id,
                    sim: cfg.sim,
                    deadline_s: cfg.deadline_s,
                    max_migrations: cfg.max_migrations,
                },
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_deterministic_and_ordered() {
        let cfg = LoadConfig { jobs: 50, ..LoadConfig::default() };
        let a = generate_load(&cfg).unwrap();
        let b = generate_load(&cfg).unwrap();
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "arrivals in time order");
        let other = generate_load(&LoadConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn malformed_configs_yield_typed_errors_not_panics() {
        let base = LoadConfig::default;
        let cases: Vec<(LoadConfig, LoadGenError)> = vec![
            (LoadConfig { tenant_mix: vec![], ..base() }, LoadGenError::EmptyTenantMix),
            (
                LoadConfig { tenant_mix: vec![1.0, -2.0], ..base() },
                LoadGenError::InvalidTenantWeight { tenant: 1, weight: -2.0 },
            ),
            // All-zero weights used to slip past the old asserts and
            // panic inside gen_range(0.0..0.0).
            (LoadConfig { tenant_mix: vec![0.0, 0.0], ..base() }, LoadGenError::ZeroTotalWeight),
            (LoadConfig { n_choices: vec![], ..base() }, LoadGenError::EmptySizeChoices),
            (LoadConfig { n_choices: vec![64, 0], ..base() }, LoadGenError::ZeroParticleCount),
            (LoadConfig { ic_choices: vec![], ..base() }, LoadGenError::EmptyIcChoices),
            (LoadConfig { rate_hz: 0.0, ..base() }, LoadGenError::InvalidRate(0.0)),
            (LoadConfig { rate_hz: f64::NAN, ..base() }, LoadGenError::InvalidRate(f64::NAN)),
        ];
        for (cfg, want) in cases {
            let got = generate_load(&cfg).unwrap_err();
            // NaN != NaN, so compare the rendered error for that case.
            assert_eq!(format!("{got}"), format!("{want}"), "config {cfg:?}");
        }
    }

    #[test]
    fn nan_tenant_weight_is_rejected() {
        let cfg = LoadConfig { tenant_mix: vec![1.0, f64::NAN], ..LoadConfig::default() };
        assert!(matches!(cfg.validate(), Err(LoadGenError::InvalidTenantWeight { tenant: 1, .. })));
    }

    #[test]
    fn ic_choices_are_drawn_and_deterministic() {
        let cfg = LoadConfig {
            jobs: 200,
            ic_choices: vec![IcKind::Plummer, IcKind::BinaryRich, IcKind::ColdCollapse],
            ..LoadConfig::default()
        };
        let load = generate_load(&cfg).unwrap();
        for kind in &cfg.ic_choices {
            let got = load.iter().filter(|(_, r)| r.ic == *kind).count();
            assert!(got > 20, "{kind} drawn only {got}/200 times");
        }
        assert_eq!(load, generate_load(&cfg).unwrap());
    }

    #[test]
    fn tenant_mix_is_respected() {
        let cfg = LoadConfig { jobs: 600, tenant_mix: vec![3.0, 1.0], ..LoadConfig::default() };
        let load = generate_load(&cfg).unwrap();
        let t0 = load.iter().filter(|(_, r)| r.tenant == 0).count();
        // 3:1 mix -> ~450 of 600; allow generous slack.
        assert!((380..=520).contains(&t0), "tenant 0 got {t0}/600");
        let mean_gap = load.last().unwrap().0 / 600.0;
        assert!((mean_gap - 1.0 / cfg.rate_hz).abs() < 0.3 / cfg.rate_hz, "gap {mean_gap}");
    }
}
