//! Statistics helpers for the measurement campaign.

use rand::Rng;

/// Sample mean.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator), 0 for a single sample.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if xs.len() < 2 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Minimum (empty-safe: returns +∞).
#[must_use]
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum (empty-safe: returns −∞).
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Percentile by linear interpolation between order statistics (the
/// "exclusive" R-7 definition NumPy defaults to). `p` in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or a `p` outside `[0, 100]`.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A standard-normal draw via Box–Muller (rand's distributions crate is not
/// among the approved dependencies).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge.
    pub lo: f64,
    /// Upper edge.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples outside the range.
    pub outliers: u64,
}

impl Histogram {
    /// Histogram of `xs` with `bins` equal bins over `[lo, hi)`. Anything
    /// not provably in range — below `lo`, at or above `hi`, or NaN —
    /// counts as an outlier; only in-range samples are cast to a bin index
    /// (an out-of-range or NaN value put through the `as usize` cast would
    /// silently saturate into bin 0).
    ///
    /// # Panics
    /// Panics unless `bins > 0` and `hi > lo`.
    #[must_use]
    pub fn build(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty histogram range");
        let mut counts = vec![0u64; bins];
        let mut outliers = 0;
        let width = (hi - lo) / bins as f64;
        for &x in xs {
            if x >= lo && x < hi {
                let b = (((x - lo) / width) as usize).min(bins - 1);
                counts[b] += 1;
            } else {
                outliers += 1;
            }
        }
        Histogram { lo, hi, counts, outliers }
    }

    /// Histogram auto-ranged to the sample with a small margin.
    ///
    /// # Panics
    /// Panics on an empty sample.
    #[must_use]
    pub fn auto(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "histogram of an empty sample");
        let (lo, hi) = (min(xs), max(xs));
        let margin = ((hi - lo) * 0.05).max(1e-9);
        Self::build(xs, lo - margin, hi + margin, bins)
    }

    /// Total in-range samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre of bin `i`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.1380899).abs() < 1e-6);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 99.0) - 3.97).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn normal_draws_have_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.03, "std {}", std_dev(&xs));
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let xs = [0.5, 1.5, 1.6, 2.5, 9.0, -1.0];
        let h = Histogram::build(&xs, 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_std_dev_is_zero_not_nan() {
        // One job in a campaign must not poison the census CSV with NaN:
        // the (n − 1) variance denominator is guarded, not divided by zero.
        for x in [0.0, 3.0, -17.5, 1e300] {
            let s = std_dev(&[x]);
            assert!(!s.is_nan(), "std_dev([{x}]) is NaN");
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn below_range_sample_is_an_outlier_not_bin_zero() {
        // A negative (x − lo)/width must never saturate through `as usize`
        // into bin 0; it belongs in the outlier count.
        let h = Histogram::build(&[-0.5], 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![0, 0, 0]);
        assert_eq!(h.outliers, 1);
    }

    #[test]
    fn nan_sample_is_an_outlier_not_bin_zero() {
        // NaN fails both range comparisons and casts to 0 via `as usize`;
        // the range check must be written so NaN lands in outliers.
        let h = Histogram::build(&[f64::NAN, 0.5], 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![1, 0, 0]);
        assert_eq!(h.outliers, 1);
    }

    #[test]
    fn auto_histogram_covers_all() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::auto(&xs, 10);
        assert_eq!(h.outliers, 0);
        assert_eq!(h.total(), 100);
    }
}
