//! Host-side device management.
//!
//! The TT-Metalium workflow starts with `CreateDevice` (which resets the
//! card) and ends with `CloseDevice`. The paper's campaign exposed a failure
//! mode at exactly this stage: 24 of 50 submitted jobs never started because
//! the device reset failed. [`create_device`] therefore returns a `Result`,
//! and [`open_cluster`] brings up the paper's four-card host.

use std::sync::Arc;

use tensix::{Device, DeviceConfig, Result};

/// `CreateDevice`: construct and reset device `id`.
///
/// # Errors
/// [`tensix::TensixError::ResetFailed`] with the configured probability —
/// the job must be abandoned, as in the paper's campaign.
pub fn create_device(id: usize, config: DeviceConfig) -> Result<Arc<Device>> {
    let device = Device::new(id, config);
    device.reset()?;
    Ok(device)
}

/// Bring up a multi-card host (the paper's machine has four Wormhole n300
/// cards on PCIe). Each device gets a distinct failure-injection stream
/// derived from `config.seed`.
///
/// # Errors
/// Fails if any card's reset fails (the paper observed the reset issue
/// affecting all devices).
pub fn open_cluster(num_devices: usize, config: DeviceConfig) -> Result<Vec<Arc<Device>>> {
    (0..num_devices).map(|id| create_device(id, config)).collect()
}

/// `CloseDevice`: release a device. Resources are dropped with the `Arc`;
/// this exists for workflow symmetry and asserts the caller holds the last
/// strong reference so nothing keeps using a closed device.
pub fn close_device(device: Arc<Device>) {
    drop(device);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_device_resets() {
        let dev = create_device(0, DeviceConfig::default()).unwrap();
        assert_eq!(dev.reset_stats().attempted, 1);
        assert_eq!(dev.clock().now(), 0.0);
        close_device(dev);
    }

    #[test]
    fn cluster_brings_up_four_cards() {
        let devices = open_cluster(4, DeviceConfig::default()).unwrap();
        assert_eq!(devices.len(), 4);
        let ids: Vec<usize> = devices.iter().map(|d| d.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reset_failure_surfaces_at_create() {
        // With certain failure, create_device always errs.
        let cfg = DeviceConfig { reset_failure_prob: 1.0, ..DeviceConfig::default() };
        assert!(create_device(0, cfg).is_err());
    }
}
