//! Block individual time steps driving the device force pipeline — the
//! production-code configuration (hierarchical steps + offloaded forces).

use std::sync::Arc;

use nbody::diagnostics::{relative_energy_error, total_energy};
use nbody::ic::{king, plummer, KingConfig, PlummerConfig};
use nbody::integrator::BlockHermite;
use nbody::ReferenceKernel;
use nbody_tt::{DeviceForceKernel, DeviceForcePipeline};
use tensix::{Device, DeviceConfig};

#[test]
fn block_steps_on_device_conserve_energy() {
    let n = 128;
    let eps = 0.03;
    let mut sys = plummer(PlummerConfig { n, seed: 300, ..PlummerConfig::default() });
    let e0 = total_energy(&sys, eps);

    let device = Device::new(0, DeviceConfig::default());
    let kernel =
        DeviceForceKernel::new(DeviceForcePipeline::new(Arc::clone(&device), n, eps, 1).unwrap());
    let integ = BlockHermite::new(kernel, 0.01, 1.0 / 16.0, 5);
    let stats = integ.evolve(&mut sys, 0.25);

    let err = relative_energy_error(total_energy(&sys, eps), e0);
    assert!(err < 1e-4, "energy error {err}");
    assert!(stats.iterations >= 4);
    assert!((sys.time - 0.25).abs() < 1e-9);
}

#[test]
fn device_block_run_tracks_cpu_block_run() {
    let n = 96;
    let eps = 0.05;
    let mk = || king(KingConfig { n, seed: 301, w0: 4.0 });

    let mut dev_sys = mk();
    let device = Device::new(0, DeviceConfig::default());
    let dev_kernel = DeviceForceKernel::new(DeviceForcePipeline::new(device, n, eps, 1).unwrap());
    BlockHermite::new(dev_kernel, 0.02, 1.0 / 16.0, 4).evolve(&mut dev_sys, 0.125);

    let mut cpu_sys = mk();
    BlockHermite::new(ReferenceKernel::new(eps), 0.02, 1.0 / 16.0, 4).evolve(&mut cpu_sys, 0.125);

    // FP32 device forces vs FP64 CPU forces can shift individual step
    // assignments, so compare trajectories loosely but meaningfully.
    let mut max_d: f64 = 0.0;
    for i in 0..n {
        for c in 0..3 {
            max_d = max_d.max((dev_sys.pos[i][c] - cpu_sys.pos[i][c]).abs());
        }
    }
    assert!(max_d < 1e-3, "device vs cpu block-step divergence {max_d}");
}
