//! Host-visible device buffers.
//!
//! Mirrors TT-Metalium's `Buffer` with the default *interleaved* layout:
//! a buffer is a sequence of tile-sized pages spread round-robin across the
//! DRAM banks. The host creates buffers, transfers tilized tensors in and
//! out through the command queue, and hands lightweight [`BufferRef`]s to
//! kernels (the hardware equivalent is passing the buffer base address as a
//! runtime argument).

use std::sync::Arc;

use tensix::dram::BufferId;
use tensix::{DataFormat, Device, Result, Tile};

/// A copyable, kernel-side reference to a DRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRef {
    /// DRAM allocation id (stands in for the base address).
    pub id: BufferId,
    /// Page format.
    pub format: DataFormat,
    /// Number of tile pages.
    pub num_tiles: usize,
}

/// An owned DRAM buffer; freed on drop.
#[derive(Debug)]
pub struct Buffer {
    device: Arc<Device>,
    reference: BufferRef,
}

impl Buffer {
    /// Allocate an interleaved DRAM buffer of `num_tiles` pages.
    ///
    /// # Errors
    /// Propagates DRAM out-of-memory.
    pub fn new(device: &Arc<Device>, format: DataFormat, num_tiles: usize) -> Result<Self> {
        let id = device.dram().allocate(format, num_tiles)?;
        Ok(Buffer { device: Arc::clone(device), reference: BufferRef { id, format, num_tiles } })
    }

    /// Kernel-side reference.
    #[must_use]
    pub fn reference(&self) -> BufferRef {
        self.reference
    }

    /// Page format.
    #[must_use]
    pub fn format(&self) -> DataFormat {
        self.reference.format
    }

    /// Number of tile pages.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.reference.num_tiles
    }

    /// Total packed size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.reference.num_tiles * self.reference.format.tile_bytes()
    }

    /// Direct host read of one page (bypassing the command queue; used by
    /// tests and debug tooling, not by the simulation pipeline).
    ///
    /// # Errors
    /// Out-of-range page.
    pub fn debug_read_tile(&self, page: usize) -> Result<Tile> {
        self.device.dram().read_tile(self.reference.id, page)
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        self.device.dram().free(self.reference.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensix::DeviceConfig;

    #[test]
    fn buffer_allocates_and_frees_on_drop() {
        let dev = Device::new(0, DeviceConfig::default());
        let before = dev.dram().allocated_bytes();
        {
            let buf = Buffer::new(&dev, DataFormat::Float32, 10).unwrap();
            assert_eq!(buf.size_bytes(), 10 * 4096);
            assert_eq!(dev.dram().allocated_bytes(), before + 10 * 4096);
            assert_eq!(buf.num_tiles(), 10);
        }
        assert_eq!(dev.dram().allocated_bytes(), before);
    }

    #[test]
    fn reference_is_copyable_into_kernels() {
        let dev = Device::new(0, DeviceConfig::default());
        let buf = Buffer::new(&dev, DataFormat::Float16b, 3).unwrap();
        let r = buf.reference();
        let r2 = r; // Copy
        assert_eq!(r2.num_tiles, 3);
        assert_eq!(r2.format, DataFormat::Float16b);
    }

    #[test]
    fn debug_read_roundtrip() {
        let dev = Device::new(0, DeviceConfig::default());
        let buf = Buffer::new(&dev, DataFormat::Float32, 2).unwrap();
        dev.dram()
            .write_tile(buf.reference().id, 1, &Tile::splat(DataFormat::Float32, 4.5))
            .unwrap();
        assert_eq!(buf.debug_read_tile(1).unwrap().get(0, 0), 4.5);
        assert!(buf.debug_read_tile(2).is_err());
    }
}
