//! Structured launch failures.
//!
//! The command queue used to panic the host process when a kernel pipeline
//! deadlocked. [`LaunchError`] replaces that with a structured result: the
//! queue supervises every kernel thread, classifies panics, watchdog
//! timeouts and injected faults, tears sibling kernels down cleanly (CB and
//! semaphore poisoning), and reports *which* kernel on *which* core is the
//! root cause.

use std::fmt;

use tensix::grid::CoreCoord;
use tensix::TensixError;

/// Per-core completed-work inventory attached to retryable launch failures.
///
/// `completed` counts work units (tiles) whose outputs the core's writer
/// fully committed to DRAM before the abort — i.e. the watermark a partial
/// redo may resume from. Counts are attempt-local: each launch resets the
/// device's progress board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreProgress {
    /// The core the inventory describes.
    pub core: CoreCoord,
    /// Work units fully committed to DRAM by this core in the failed attempt.
    pub completed: u64,
}

/// Why a program launch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// A kernel panicked (assertion, injected fault, or NoC/DRAM error).
    KernelPanic {
        /// Kernel label.
        kernel: String,
        /// Core the instance ran on.
        core: CoreCoord,
        /// Panic message or fault description.
        message: String,
        /// Per-core completed-tile inventory at abort time.
        completed: Vec<CoreProgress>,
    },
    /// A kernel's CB/semaphore wait exceeded the deadlock watchdog.
    Deadlock {
        /// Kernel label.
        kernel: String,
        /// Core the instance ran on.
        core: CoreCoord,
        /// Which wait timed out.
        message: String,
        /// Per-core completed-tile inventory at abort time.
        completed: Vec<CoreProgress>,
    },
    /// A kernel hung without making progress (injected compute stall); the
    /// supervisor cancelled it and tore the rest of the program down.
    Stall {
        /// Kernel label.
        kernel: String,
        /// Core the instance ran on.
        core: CoreCoord,
        /// Per-core completed-tile inventory at abort time.
        completed: Vec<CoreProgress>,
    },
    /// The card fell off the bus before or during the launch.
    DeviceLost {
        /// Device id that disappeared.
        device_id: usize,
    },
    /// `finish_with_timeout` exceeded its virtual-time budget.
    Timeout {
        /// Allowed virtual seconds.
        budget_s: f64,
        /// Virtual seconds actually accumulated.
        elapsed_s: f64,
    },
    /// A device-layer error before any kernel ran (e.g. CB config does not
    /// fit in L1).
    Device(TensixError),
}

impl LaunchError {
    /// The core of the root-cause kernel, when one is identified.
    #[must_use]
    pub fn faulting_core(&self) -> Option<CoreCoord> {
        match self {
            LaunchError::KernelPanic { core, .. }
            | LaunchError::Deadlock { core, .. }
            | LaunchError::Stall { core, .. } => Some(*core),
            _ => None,
        }
    }

    /// Short phase tag for failure taxonomies ("panic", "deadlock",
    /// "stall", "device-lost", "timeout", "setup").
    #[must_use]
    pub fn phase(&self) -> &'static str {
        match self {
            LaunchError::KernelPanic { .. } => "panic",
            LaunchError::Deadlock { .. } => "deadlock",
            LaunchError::Stall { .. } => "stall",
            LaunchError::DeviceLost { .. } => "device-lost",
            LaunchError::Timeout { .. } => "timeout",
            LaunchError::Device(_) => "setup",
        }
    }

    /// Whether a retry of the same launch can plausibly succeed: true for
    /// one-shot kernel-level faults (panics, deadlocks, stalls), false for
    /// device loss (needs a reset + rebuild), budget exhaustion and setup
    /// errors (deterministic, e.g. L1 overflow).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            LaunchError::KernelPanic { .. }
                | LaunchError::Deadlock { .. }
                | LaunchError::Stall { .. }
        )
    }

    /// Whether this failure takes the whole card out of service: the card
    /// fell off the bus, or its ERISC chip-to-chip link died (a ring member
    /// without a link is as gone as a dead card). These are the failures a
    /// spare can absorb, and the ones in-place retries can never fix — the
    /// card's DRAM contents are unreachable.
    #[must_use]
    pub fn is_card_loss(&self) -> bool {
        matches!(
            self,
            LaunchError::DeviceLost { .. } | LaunchError::Device(TensixError::EthLinkDown { .. })
        )
    }

    /// Per-core completed-tile inventory of the failed attempt, when the
    /// supervisor captured one. Empty for device loss, timeout and setup
    /// errors (no kernel ran or the board is untrustworthy).
    #[must_use]
    pub fn completed_work(&self) -> &[CoreProgress] {
        match self {
            LaunchError::KernelPanic { completed, .. }
            | LaunchError::Deadlock { completed, .. }
            | LaunchError::Stall { completed, .. } => completed,
            _ => &[],
        }
    }
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::KernelPanic { kernel, core, message, .. } => {
                write!(f, "kernel '{kernel}' on core {core} panicked: {message}")
            }
            LaunchError::Deadlock { kernel, core, message, .. } => {
                write!(f, "kernel '{kernel}' on core {core} deadlocked: {message}")
            }
            LaunchError::Stall { kernel, core, .. } => {
                write!(f, "kernel '{kernel}' on core {core} stalled (no progress; cancelled)")
            }
            LaunchError::DeviceLost { device_id } => {
                write!(f, "device {device_id} fell off the bus during launch")
            }
            LaunchError::Timeout { budget_s, elapsed_s } => {
                write!(f, "finish exceeded budget: {elapsed_s:.3} s > {budget_s:.3} s")
            }
            LaunchError::Device(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<TensixError> for LaunchError {
    fn from(e: TensixError) -> Self {
        match e {
            TensixError::DeviceLost { device_id } => LaunchError::DeviceLost { device_id },
            other => LaunchError::Device(other),
        }
    }
}

impl From<LaunchError> for TensixError {
    fn from(e: LaunchError) -> Self {
        match e {
            // Pass device-layer errors through unchanged so callers matching
            // on e.g. L1OutOfMemory keep working.
            LaunchError::Device(inner) => inner,
            LaunchError::DeviceLost { device_id } => TensixError::DeviceLost { device_id },
            other => TensixError::KernelFault { message: other.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_errors_roundtrip_unchanged() {
        let e = TensixError::DramOutOfMemory { requested: 8, available: 4 };
        let launch = LaunchError::from(e.clone());
        assert_eq!(TensixError::from(launch), e);
    }

    #[test]
    fn device_loss_maps_both_ways() {
        let launch = LaunchError::from(TensixError::DeviceLost { device_id: 2 });
        assert_eq!(launch, LaunchError::DeviceLost { device_id: 2 });
        assert_eq!(TensixError::from(launch), TensixError::DeviceLost { device_id: 2 });
    }

    #[test]
    fn kernel_failures_identify_core_and_phase() {
        let core = CoreCoord::new(3, 1);
        let e = LaunchError::Stall {
            kernel: "force-compute".into(),
            core,
            completed: vec![CoreProgress { core, completed: 2 }],
        };
        assert_eq!(e.faulting_core(), Some(core));
        assert_eq!(e.phase(), "stall");
        assert!(e.is_transient());
        assert_eq!(e.completed_work(), &[CoreProgress { core, completed: 2 }]);
        assert!(e.to_string().contains("force-compute"));
        let lost = LaunchError::DeviceLost { device_id: 0 };
        assert_eq!(lost.faulting_core(), None);
        assert!(!lost.is_transient());
    }
}
