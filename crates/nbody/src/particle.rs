//! Particle system state.
//!
//! Master state is double precision, structure-of-arrays: the mixed-precision
//! scheme of the paper keeps positions, velocities and the integrator in FP64
//! on the host and only evaluates forces in FP32 (on the device or in the
//! SIMD CPU kernel).

/// A 3-vector alias used throughout the physics code.
pub type Vec3 = [f64; 3];

/// Gravitational constant in N-body (Hénon) units.
pub const G: f64 = 1.0;

/// SoA particle state.
#[derive(Debug, Clone, Default)]
pub struct ParticleSystem {
    /// Masses.
    pub mass: Vec<f64>,
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Current accelerations (filled by a force kernel).
    pub acc: Vec<Vec3>,
    /// Current jerks — first time derivatives of acceleration (filled by a
    /// force kernel; required by the 4th-order Hermite integrator).
    pub jerk: Vec<Vec3>,
    /// Simulation time in N-body units.
    pub time: f64,
}

impl ParticleSystem {
    /// Empty system with capacity for `n` particles.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        ParticleSystem {
            mass: Vec::with_capacity(n),
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            acc: Vec::with_capacity(n),
            jerk: Vec::with_capacity(n),
            time: 0.0,
        }
    }

    /// Append one particle (acceleration and jerk start at zero).
    pub fn push(&mut self, mass: f64, pos: Vec3, vel: Vec3) {
        self.mass.push(mass);
        self.pos.push(pos);
        self.vel.push(vel);
        self.acc.push([0.0; 3]);
        self.jerk.push([0.0; 3]);
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Whether the system is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Total mass.
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Center of mass position.
    #[must_use]
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        let mut com = [0.0; 3];
        for (mi, p) in self.mass.iter().zip(&self.pos) {
            for k in 0..3 {
                com[k] += mi * p[k];
            }
        }
        if m > 0.0 {
            for c in &mut com {
                *c /= m;
            }
        }
        com
    }

    /// Center-of-mass velocity.
    #[must_use]
    pub fn com_velocity(&self) -> Vec3 {
        let m = self.total_mass();
        let mut v = [0.0; 3];
        for (mi, vi) in self.mass.iter().zip(&self.vel) {
            for k in 0..3 {
                v[k] += mi * vi[k];
            }
        }
        if m > 0.0 {
            for c in &mut v {
                *c /= m;
            }
        }
        v
    }

    /// Shift to the center-of-mass frame (zero COM position and velocity) —
    /// standard initial-condition hygiene for cluster simulations.
    pub fn to_com_frame(&mut self) {
        let com = self.center_of_mass();
        let vcom = self.com_velocity();
        for p in &mut self.pos {
            for k in 0..3 {
                p[k] -= com[k];
            }
        }
        for v in &mut self.vel {
            for k in 0..3 {
                v[k] -= vcom[k];
            }
        }
    }

    /// Overwrite acceleration and jerk (used by integrators after a force
    /// evaluation).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_forces(&mut self, acc: Vec<Vec3>, jerk: Vec<Vec3>) {
        assert_eq!(acc.len(), self.len(), "acceleration length mismatch");
        assert_eq!(jerk.len(), self.len(), "jerk length mismatch");
        self.acc = acc;
        self.jerk = jerk;
    }
}

/// Result of one force evaluation: acceleration and jerk for every particle.
#[derive(Debug, Clone, PartialEq)]
pub struct Forces {
    /// Accelerations.
    pub acc: Vec<Vec3>,
    /// Jerks.
    pub jerk: Vec<Vec3>,
}

impl Forces {
    /// Zero forces for `n` particles.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Forces { acc: vec![[0.0; 3]; n], jerk: vec![[0.0; 3]; n] }
    }

    /// Number of particles covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> ParticleSystem {
        let mut s = ParticleSystem::with_capacity(2);
        s.push(1.0, [1.0, 0.0, 0.0], [0.0, 0.5, 0.0]);
        s.push(3.0, [-1.0, 0.0, 0.0], [0.0, -0.5, 0.0]);
        s
    }

    #[test]
    fn push_and_len() {
        let s = two_body();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.acc.len(), 2);
        assert_eq!(s.jerk.len(), 2);
        assert_eq!(s.total_mass(), 4.0);
    }

    #[test]
    fn center_of_mass() {
        let s = two_body();
        let com = s.center_of_mass();
        // (1*1 + 3*(-1)) / 4 = -0.5.
        assert!((com[0] + 0.5).abs() < 1e-15);
        assert_eq!(com[1], 0.0);
    }

    #[test]
    fn com_frame_zeroes_both() {
        let mut s = two_body();
        s.to_com_frame();
        let com = s.center_of_mass();
        let vcom = s.com_velocity();
        for k in 0..3 {
            assert!(com[k].abs() < 1e-15);
            assert!(vcom[k].abs() < 1e-15);
        }
    }

    #[test]
    fn empty_system_com_is_origin() {
        let s = ParticleSystem::default();
        assert_eq!(s.center_of_mass(), [0.0; 3]);
        assert_eq!(s.com_velocity(), [0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_forces_checks_length() {
        let mut s = two_body();
        s.set_forces(vec![[0.0; 3]; 1], vec![[0.0; 3]; 1]);
    }

    #[test]
    fn forces_zeros() {
        let f = Forces::zeros(5);
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert_eq!(f.acc[4], [0.0; 3]);
    }
}
