//! Experiment E3 — Fig. 5: energy-to-solution distributions, the 1.80×
//! energy ratio, and the peak-power comparison (≈260 W vs ≈210 W).

use std::fs;
use std::path::Path;

use tt_harness::{default_run, render_histogram, render_table, run_fig5, Comparison};
use tt_telemetry::stats::{max, mean, min};

fn main() {
    let run = default_run();
    let result = run_fig5(&run, 0x0515);

    println!("=== E3 / Fig. 5: energy-to-solution ===\n");
    println!("{}", render_histogram("Fig 5(a): device + CPU", &result.accel_energy_kj, 9, "kJ"));
    println!("{}", render_histogram("Fig 5(b): CPU only", &result.cpu_energy_kj, 9, "kJ"));

    let rows = vec![
        Comparison::new("energy accel (mean)", 71.56, mean(&result.accel_energy_kj), "kJ"),
        Comparison::new("energy accel (min)", 71.23, min(&result.accel_energy_kj), "kJ"),
        Comparison::new("energy accel (max)", 71.81, max(&result.accel_energy_kj), "kJ"),
        Comparison::new("energy CPU (mean)", 128.89, mean(&result.cpu_energy_kj), "kJ"),
        Comparison::new("energy CPU (min)", 127.29, min(&result.cpu_energy_kj), "kJ"),
        Comparison::new("energy CPU (max)", 131.36, max(&result.cpu_energy_kj), "kJ"),
        Comparison::new("energy ratio", 1.80, result.energy_ratio, "x"),
        Comparison::new("peak power accel", 260.0, result.accel_peak_w, "W"),
        Comparison::new("peak power CPU", 210.0, result.cpu_peak_w, "W"),
    ];
    println!("{}", render_table("paper vs measured", &rows, 0.10));

    fs::create_dir_all("results").ok();
    let mut csv = String::from("kind,energy_kj\n");
    for e in &result.accel_energy_kj {
        csv.push_str(&format!("accel,{e:.4}\n"));
    }
    for e in &result.cpu_energy_kj {
        csv.push_str(&format!("cpu,{e:.4}\n"));
    }
    fs::write(Path::new("results/fig5_energy_to_solution.csv"), csv).ok();
    println!("raw data written to results/fig5_energy_to_solution.csv");
}
