//! ERISC / Ethernet subsystem.
//!
//! Each Wormhole carries two QSFP-DD ports at up to 200 Gb/s for chip-to-chip
//! and card-to-card traffic; the n300 itself is two chips joined by such
//! links. The N-body port in the paper uses a single device, but its stated
//! next step is multi-accelerator MPI scaling — the harness's scaling
//! extension (experiment E6) uses this model to estimate the halo-exchange
//! cost of distributing particles across cards.

/// Bandwidth of one Ethernet port in bytes per second (200 Gb/s).
pub const ETH_PORT_BYTES_PER_S: f64 = 200.0e9 / 8.0;

/// One-way latency of an ERISC hop in seconds (link + ERISC forwarding).
pub const ETH_LATENCY_S: f64 = 1.0e-6;

/// A point-to-point Ethernet link between two devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EthLink {
    /// Usable bandwidth, bytes/s.
    pub bandwidth: f64,
    /// One-way latency, seconds.
    pub latency: f64,
}

impl Default for EthLink {
    fn default() -> Self {
        EthLink { bandwidth: ETH_PORT_BYTES_PER_S, latency: ETH_LATENCY_S }
    }
}

impl EthLink {
    /// Time to move `bytes` across the link.
    #[must_use]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// A ring of `n` devices connected by Ethernet links — the topology
/// TT-Metalium builds for multi-card systems (each n300 exposes two ports).
#[derive(Debug, Clone)]
pub struct EthRing {
    links: Vec<EthLink>,
}

impl EthRing {
    /// A homogeneous ring of `n` devices.
    ///
    /// # Panics
    /// Panics for `n == 0`.
    #[must_use]
    pub fn homogeneous(n: usize, link: EthLink) -> Self {
        assert!(n > 0, "a ring needs at least one device");
        EthRing { links: vec![link; n] }
    }

    /// Number of devices.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.links.len()
    }

    /// Time for an all-gather of `bytes_per_device` around the ring
    /// (ring algorithm: `n − 1` steps, each moving one device's share).
    #[must_use]
    pub fn allgather_seconds(&self, bytes_per_device: u64) -> f64 {
        let n = self.links.len();
        if n <= 1 {
            return 0.0;
        }
        let slowest =
            self.links.iter().map(|l| l.transfer_seconds(bytes_per_device)).fold(0.0f64, f64::max);
        slowest * (n - 1) as f64
    }

    /// Time for a ring all-reduce of `bytes` (reduce-scatter + all-gather:
    /// `2 (n − 1)` steps on `bytes / n` chunks).
    #[must_use]
    pub fn allreduce_seconds(&self, bytes: u64) -> f64 {
        let n = self.links.len();
        if n <= 1 {
            return 0.0;
        }
        let chunk = bytes.div_ceil(n as u64);
        let slowest = self.links.iter().map(|l| l.transfer_seconds(chunk)).fold(0.0f64, f64::max);
        slowest * 2.0 * (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_bandwidth_is_200gbps() {
        let l = EthLink::default();
        // 25 GB at 25 GB/s ≈ 1 s.
        assert!((l.transfer_seconds(25_000_000_000) - 1.0).abs() < 0.01);
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let l = EthLink::default();
        let t = l.transfer_seconds(64);
        assert!(t > ETH_LATENCY_S && t < 2.0 * ETH_LATENCY_S);
    }

    #[test]
    fn single_device_ring_needs_no_communication() {
        let ring = EthRing::homogeneous(1, EthLink::default());
        assert_eq!(ring.allgather_seconds(1_000_000), 0.0);
        assert_eq!(ring.allreduce_seconds(1_000_000), 0.0);
    }

    #[test]
    fn allgather_scales_with_ring_size() {
        let two = EthRing::homogeneous(2, EthLink::default());
        let four = EthRing::homogeneous(4, EthLink::default());
        let t2 = two.allgather_seconds(10_000_000);
        let t4 = four.allgather_seconds(10_000_000);
        assert!(t4 > t2);
        assert!((t4 / t2 - 3.0).abs() < 0.01, "(n-1) steps: 3 vs 1");
    }

    #[test]
    fn allreduce_twice_the_steps_on_smaller_chunks() {
        let ring = EthRing::homogeneous(4, EthLink::default());
        let bytes = 100_000_000u64;
        let ar = ring.allreduce_seconds(bytes);
        let ag = ring.allgather_seconds(bytes / 4);
        assert!((ar / ag - 2.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_ring_panics() {
        let _ = EthRing::homogeneous(0, EthLink::default());
    }
}
