//! Property-based tests on the device substrate's core invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use tensix::cb::{CircularBuffer, CircularBufferConfig};
use tensix::dtype::{bf16_round, f16_round, DataFormat};
use tensix::grid::CoreCoord;
use tensix::l1::{L1Allocator, L1_RESERVED, L1_SIZE};
use tensix::tile::{pack_vector, tilize, unpack_vector, untilize, Tile, TILE_ELEMS};

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![-1.0e20f32..1.0e20f32, -1.0f32..1.0f32, Just(0.0f32), Just(-0.0f32),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// tilize ∘ untilize is the identity for FP32.
    #[test]
    fn tilize_untilize_identity(vals in vec(finite_f32(), 64 * 32)) {
        let (rows, cols) = (64, 32);
        let tiles = tilize(DataFormat::Float32, &vals, rows, cols);
        prop_assert_eq!(untilize(&tiles, rows, cols), vals);
    }

    /// pack ∘ unpack is the identity for any vector length.
    #[test]
    fn pack_unpack_identity(vals in vec(finite_f32(), 1..3000usize)) {
        let n = vals.len();
        let tiles = pack_vector(DataFormat::Float32, &vals, 0.0);
        prop_assert_eq!(tiles.len(), n.div_ceil(TILE_ELEMS));
        prop_assert_eq!(unpack_vector(&tiles, n), vals);
    }

    /// Tilized face layout round-trips for every format (within the
    /// format's own grid: quantize first, then compare).
    #[test]
    fn tilized_face_roundtrip(vals in vec(finite_f32(), TILE_ELEMS)) {
        for format in [DataFormat::Float32, DataFormat::Float16b, DataFormat::Float16] {
            let tile = Tile::from_rowmajor(format, &vals);
            let back = Tile::from_tilized(format, &tile.to_tilized());
            prop_assert_eq!(tile.as_slice(), back.as_slice());
        }
    }

    /// bf16 rounding is idempotent and monotone.
    #[test]
    fn bf16_idempotent_monotone(a in finite_f32(), b in finite_f32()) {
        let ra = bf16_round(a);
        prop_assert_eq!(bf16_round(ra), ra, "idempotence");
        if a <= b {
            prop_assert!(bf16_round(a) <= bf16_round(b), "monotonicity {a} {b}");
        }
    }

    /// f16 rounding never increases magnitude error beyond half an ulp of
    /// the larger-exponent neighbour (coarse bound: 2^-10 relative for
    /// normals in range).
    #[test]
    fn f16_relative_error_bounded(x in 1.0e-3f32..6.0e4f32) {
        let r = f16_round(x);
        prop_assert!(((r - x) / x).abs() <= 1.0 / 1024.0, "x={x} r={r}");
    }

    /// The bump allocator never hands out overlapping or misaligned
    /// regions, and never exceeds L1.
    #[test]
    fn l1_regions_disjoint(sizes in vec(1usize..50_000, 1..20)) {
        let mut alloc = L1Allocator::new(CoreCoord::new(0, 0));
        let mut regions = Vec::new();
        for len in sizes {
            match alloc.alloc(len) {
                Ok(r) => {
                    prop_assert_eq!(r.addr % 32, 0, "alignment");
                    prop_assert!(r.addr >= L1_RESERVED);
                    prop_assert!(r.addr + r.len <= L1_SIZE);
                    for other in &regions {
                        let (a, b): &(usize, usize) = other;
                        prop_assert!(r.addr >= a + b || r.addr + r.len <= *a, "overlap");
                    }
                    regions.push((r.addr, r.len));
                }
                Err(_) => {
                    // Exhaustion is legal; subsequent smaller requests may
                    // still fail, but state must stay consistent.
                    prop_assert!(alloc.used() <= L1_SIZE);
                }
            }
        }
    }

    /// CB streaming preserves every page in order for any (depth, count).
    #[test]
    fn cb_preserves_page_stream(depth in 1usize..8, count in 1usize..40) {
        let cb = CircularBuffer::new(CircularBufferConfig::new(depth, DataFormat::Float32));
        let producer = cb.clone();
        let consumer = cb.clone();
        let seen = std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..count {
                    producer.reserve_back(1);
                    producer.write_tile(&Tile::splat(DataFormat::Float32, i as f32));
                    producer.push_back(1);
                }
            });
            let h = s.spawn(move || {
                let mut seen = Vec::with_capacity(count);
                for _ in 0..count {
                    consumer.wait_front(1);
                    seen.push(consumer.peek_tile(0).get(0, 0));
                    consumer.pop_front(1);
                }
                seen
            });
            h.join().unwrap()
        });
        let expected: Vec<f32> = (0..count).map(|i| i as f32).collect();
        prop_assert_eq!(seen, expected);
        let stats = cb.stats();
        prop_assert_eq!(stats.pages_pushed, count as u64);
        prop_assert_eq!(stats.pages_popped, count as u64);
        prop_assert!(stats.max_occupancy <= depth);
    }

    /// Format conversion through a lower-precision format is idempotent:
    /// converting twice equals converting once.
    #[test]
    fn format_conversion_idempotent(vals in vec(finite_f32(), TILE_ELEMS)) {
        let t = Tile::from_rowmajor(DataFormat::Float32, &vals);
        for format in [DataFormat::Float16b, DataFormat::Float16] {
            let once = t.convert(format);
            let twice = once.convert(format);
            prop_assert_eq!(once.as_slice(), twice.as_slice());
        }
    }
}
