//! Experiment bench E1 — Fig. 3: regenerates the time-to-solution
//! distributions (50 accelerated submissions + 49 CPU jobs through the
//! campaign machinery) and reports the paper-vs-measured headline numbers
//! once, alongside Criterion timing of the campaign generator itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tt_harness::{default_run, run_fig3};
use tt_telemetry::stats::{mean, std_dev};

fn fig3_report(_c: &mut Criterion) {
    let run = default_run();
    let r = run_fig3(&run, 0x5c25);
    eprintln!("=== E1 / Fig. 3 (paper vs measured) ===");
    eprintln!(
        "accel time: paper 301.40 +/- 0.24 s | measured {:.2} +/- {:.2} s over {} runs",
        mean(&r.accel_times),
        std_dev(&r.accel_times),
        r.accel_times.len()
    );
    eprintln!(
        "cpu time:   paper 672.90 +/- 7.83 s | measured {:.2} +/- {:.2} s over {} runs",
        mean(&r.cpu_times),
        std_dev(&r.cpu_times),
        r.cpu_times.len()
    );
    eprintln!("speedup:    paper 2.23x | measured {:.2}x", r.speedup);
    eprintln!("census:     paper 26/50 | measured {}/{}", r.accel_succeeded, r.accel_submitted);
}

fn bench_campaign(c: &mut Criterion) {
    let run = default_run();
    let mut group = c.benchmark_group("fig3_campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("fifty_plus_fortynine_jobs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_fig3(&run, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, fig3_report, bench_campaign);
criterion_main!(benches);
