//! FP64 golden-reference kernel.
//!
//! "This CPU-based calculation serves as the 'golden reference' for
//! accuracy" — a naive double-precision O(N²) evaluation of
//!
//! aᵢ = G Σⱼ mⱼ rᵢⱼ / (rᵢⱼ² + ε²)^{3/2}
//! jᵢ = G Σⱼ mⱼ [ vᵢⱼ / s³ − 3 (rᵢⱼ·vᵢⱼ) rᵢⱼ / s⁵ ],  s² = rᵢⱼ² + ε²
//!
//! with rᵢⱼ = rⱼ − rᵢ, vᵢⱼ = vⱼ − vᵢ.

use crate::force::ForceKernel;
use crate::particle::{Forces, ParticleSystem, G};

/// Double-precision brute-force kernel.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceKernel {
    eps: f64,
}

impl ReferenceKernel {
    /// Kernel with Plummer softening `eps`.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        ReferenceKernel { eps }
    }
}

impl ForceKernel for ReferenceKernel {
    fn name(&self) -> &'static str {
        "reference-f64"
    }

    fn softening(&self) -> f64 {
        self.eps
    }

    fn compute_range(&self, system: &ParticleSystem, i0: usize, i1: usize) -> Forces {
        assert!(i0 <= i1 && i1 <= system.len(), "invalid range {i0}..{i1}");
        let n = system.len();
        let e2 = self.eps * self.eps;
        let mut out = Forces::zeros(i1 - i0);
        for i in i0..i1 {
            let pi = system.pos[i];
            let vi = system.vel[i];
            let mut acc = [0.0f64; 3];
            let mut jerk = [0.0f64; 3];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dx = system.pos[j][0] - pi[0];
                let dy = system.pos[j][1] - pi[1];
                let dz = system.pos[j][2] - pi[2];
                let dvx = system.vel[j][0] - vi[0];
                let dvy = system.vel[j][1] - vi[1];
                let dvz = system.vel[j][2] - vi[2];
                let r2 = dx * dx + dy * dy + dz * dz + e2;
                let rinv = 1.0 / r2.sqrt();
                let rinv2 = rinv * rinv;
                let mr3 = G * system.mass[j] * rinv * rinv2;
                let rv3 = 3.0 * (dx * dvx + dy * dvy + dz * dvz) * rinv2;
                acc[0] += mr3 * dx;
                acc[1] += mr3 * dy;
                acc[2] += mr3 * dz;
                jerk[0] += mr3 * (dvx - rv3 * dx);
                jerk[1] += mr3 * (dvy - rv3 * dy);
                jerk[2] += mr3 * (dvz - rv3 * dz);
            }
            out.acc[i - i0] = acc;
            out.jerk[i - i0] = jerk;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body(separation: f64) -> ParticleSystem {
        let mut s = ParticleSystem::with_capacity(2);
        s.push(2.0, [separation / 2.0, 0.0, 0.0], [0.0, 0.1, 0.0]);
        s.push(1.0, [-separation / 2.0, 0.0, 0.0], [0.0, -0.2, 0.0]);
        s
    }

    #[test]
    fn two_body_acceleration_analytic() {
        let s = two_body(2.0);
        let f = ReferenceKernel::new(0.0).compute(&s);
        // |a₀| = G m₁ / r² = 1/4 pointing −x; |a₁| = G m₀ / r² = 2/4 = 0.5 +x.
        assert!((f.acc[0][0] + 0.25).abs() < 1e-15);
        assert!((f.acc[1][0] - 0.5).abs() < 1e-15);
        assert_eq!(f.acc[0][1], 0.0);
    }

    #[test]
    fn two_body_jerk_analytic() {
        // Pure tangential relative velocity: d·dv = 0·dvx + ... with d along
        // x and dv along y: r·v = 0 ⇒ jerk = m dv / r³.
        let s = two_body(2.0);
        let f = ReferenceKernel::new(0.0).compute(&s);
        // Particle 0: dv = v1 − v0 = (0,−0.3,0); m1 = 1, r³ = 8.
        assert!((f.jerk[0][1] + 0.3 / 8.0).abs() < 1e-15);
        assert_eq!(f.jerk[0][0], 0.0);
        // Particle 1: dv = (0, 0.3, 0); m0 = 2.
        assert!((f.jerk[1][1] - 2.0 * 0.3 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn radial_motion_jerk() {
        // Head-on approach: d = (r,0,0), dv = (−u,0,0):
        // jerk_x = m(−u + 3u)/r³ = 2mu/r³ > 0 — the attraction toward the
        // approaching neighbour strengthens.
        let mut s = ParticleSystem::with_capacity(2);
        s.push(1.0, [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        s.push(1.0, [2.0, 0.0, 0.0], [-0.4, 0.0, 0.0]);
        let f = ReferenceKernel::new(0.0).compute(&s);
        let expected = 2.0 * 1.0 * 0.4 / 8.0; // 2 m u / r³
        assert!((f.jerk[0][0] - expected).abs() < 1e-15, "{}", f.jerk[0][0]);
    }

    #[test]
    fn momentum_conservation() {
        // Σ mᵢ aᵢ = 0 by Newton's third law.
        let s = two_body(3.0);
        let f = ReferenceKernel::new(0.1).compute(&s);
        for c in 0..3 {
            let p: f64 = s.mass.iter().zip(&f.acc).map(|(m, a)| m * a[c]).sum();
            assert!(p.abs() < 1e-15, "net force component {c} = {p}");
        }
    }

    #[test]
    fn softening_caps_close_encounters() {
        let mut s = ParticleSystem::with_capacity(2);
        s.push(1.0, [0.0, 0.0, 0.0], [0.0; 3]);
        s.push(1.0, [1e-9, 0.0, 0.0], [0.0; 3]);
        let hard = ReferenceKernel::new(0.0).compute(&s);
        let soft = ReferenceKernel::new(0.01).compute(&s);
        assert!(hard.acc[0][0].abs() > 1e17);
        assert!(soft.acc[0][0].abs() < 1e4);
    }

    #[test]
    fn single_particle_feels_nothing() {
        let mut s = ParticleSystem::with_capacity(1);
        s.push(1.0, [1.0, 2.0, 3.0], [0.1, 0.2, 0.3]);
        let f = ReferenceKernel::new(0.0).compute(&s);
        assert_eq!(f.acc[0], [0.0; 3]);
        assert_eq!(f.jerk[0], [0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let s = two_body(1.0);
        let _ = ReferenceKernel::new(0.0).compute_range(&s, 1, 5);
    }
}
