//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so this crate reimplements
//! the surface the workspace's property tests use: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` / tuples /
//! ranges / [`strategy::Just`], and [`collection::vec`]. Cases are generated
//! from a deterministic per-test seed (no shrinking: a failing case panics
//! with its case number, which reproduces exactly on re-run).

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    ///
    /// Unlike real proptest there is no value tree or shrinking — `generate`
    /// draws one case directly.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { strategy: self, f }
        }

        /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { gen: Box::new(move |rng| self.generate(rng)) }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.strategy.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner().gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner().gen_range(self.clone())
                }
            }
        )*};
    }
    numeric_range_strategy!(f64, f32, usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted sizes for [`vec`]: an exact length, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Runner configuration — only the case count is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The generator driving a property test.
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// Deterministic generator for the named test: the seed is a hash of
        /// the test name, so every `cargo test` run replays the same cases.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { rng: SmallRng::seed_from_u64(h) }
        }

        /// The underlying bit source.
        pub fn inner(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with `message`.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each function runs `cases` times with fresh
/// deterministic inputs; `prop_assert*` failures report the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in vec(0.0f32..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn map_and_flat_map_compose(s in (1usize..5).prop_flat_map(|n| {
            vec(0i32..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = s;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_draws_from_all_arms(x in prop_oneof![Just(1i32), Just(2i32), 5i32..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let draw = || {
            let mut rng = TestRng::for_test("fixed-name");
            (0..8).map(|_| (0.0f64..1.0).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
