//! The deterministic virtual-time job server.
//!
//! One campaign = one call to [`run_campaign`]: a list of `(arrival time,
//! request)` pairs is replayed through a discrete-event loop over a fleet
//! of simulated backends. All time is *virtual* — arrival times come from
//! the load generator, service times from the device simulator's virtual
//! clock (or the modeled CPU rate) — so the loop is single-threaded,
//! wall-clock-free, and bitwise replayable: the same campaign seed and
//! arrival list produce the same per-job outcomes, the same quarantine
//! decisions, and the same census, every run.
//!
//! Lifecycle of one job:
//!
//! 1. **Admission** ([`crate::wfq::Admission`]): bounded global and
//!    per-tenant queues shed overload at the door with typed
//!    [`Rejection`]s.
//! 2. **Dispatch**: weighted-fair pick of the next job; queue-deadline
//!    enforcement (a job that waited past its deadline is shed, never
//!    silently dropped).
//! 3. **Execution** on a device backend under its storm-derived fault
//!    profile, with per-segment in-place recovery and checkpoint spill.
//! 4. **Migration**: a terminal fault strikes the backend's
//!    [`crate::breaker::Breaker`] and moves the job — via its newest
//!    on-disk checkpoint — to another device backend, resuming bitwise.
//! 5. **Degradation**: when no device backend can take the job (fleet
//!    quarantined or migration budget spent), it restarts on the host CPU
//!    evaluator: slower, never refused, typed as [`JobDisposition::DegradedCpu`].
//! 6. **Verification**: every completed job's final FP64 state is hashed
//!    and compared against a fault-free golden of its backend class, so
//!    the census can assert the zero-lost-jobs invariant.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use nbody::ic::IcKind;
use nbody::particle::ParticleSystem;
use nbody_tt::{
    latest_checkpoint, resume_simulation_resilient, run_block_simulation,
    run_block_simulation_resilient, run_cpu_block_simulation, run_cpu_simulation, run_simulation,
    run_simulation_resilient, BlockResilientOutcome, ForceEvaluator, ForceKernelKind,
    MultiDevicePipeline, PipelineTiming, RecoveryConfig, ResilientOutcome, RetryPolicy,
    SingleCardEvaluator, SpillConfig, TreeForceEvaluator,
};
use tensix::catalog::DeviceArch;
use tensix::{
    backend_storm, BackendStorm, Device, DeviceConfig, FaultClass, StormConfig, TensixError,
};
use tt_telemetry::serving::{JobDisposition, ServedJob, ServingCensus};
use tt_trace::serving::{JobPhase, JobSpanBuilder, JobSpanTree};
use tt_trace::TraceSink;
use ttmetal::LaunchError;

use crate::breaker::{Breaker, BreakerConfig};
use crate::job::{JobRequest, Rejection, TenantSpec};
use crate::recorder::{
    breaker_label, FlightConfig, FlightRecorder, Postmortem, ServerSnapshot, SlotSnapshot,
    TriggerKind,
};
use crate::wfq::{Admission, QueuedJob};

/// Shape of one backend in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// One Wormhole card.
    SingleCard,
    /// A multi-card all-gather ring with a spare pool.
    Ring {
        /// Active ring members.
        members: usize,
        /// Hot spares promoted on member loss (absorbed without rollback).
        spares: usize,
    },
    /// Host Barnes-Hut tree code at opening angle θ = `theta_milli`/1000
    /// (integer so the kind stays `Copy + Eq + Hash` for golden keys).
    /// Storm-immune — no device to lose — but a distinct *backend class*:
    /// its forces differ from the FP32 device pipeline, so it verifies
    /// against its own goldens and jobs never migrate across classes.
    TreeHost {
        /// Opening angle in milli-units (600 → θ = 0.6).
        theta_milli: u32,
    },
}

/// Golden-compatibility class of a backend: two backends in the same class
/// produce bitwise-identical trajectories for the same request, so a job
/// may migrate between them and still match one golden.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendClass {
    /// FP32 tiled device pipelines (single cards and rings are
    /// bitwise-compatible by the ring-equivalence tests).
    Device,
    /// Host FP64 Barnes-Hut at a fixed opening angle.
    Tree {
        /// Opening angle in milli-units.
        theta_milli: u32,
    },
    /// Host FP64 direct-sum CPU evaluator (degradation target).
    Cpu,
}

impl BackendKind {
    fn label(self, slot: usize) -> String {
        match self {
            BackendKind::SingleCard => format!("card{slot}"),
            BackendKind::Ring { members, spares } => format!("ring{slot}x{members}+{spares}"),
            BackendKind::TreeHost { theta_milli } => format!("tree{slot}t{theta_milli}"),
        }
    }

    /// The golden-compatibility class of this backend.
    #[must_use]
    pub fn class(self) -> BackendClass {
        match self {
            BackendKind::SingleCard | BackendKind::Ring { .. } => BackendClass::Device,
            BackendKind::TreeHost { theta_milli } => BackendClass::Tree { theta_milli },
        }
    }
}

impl BackendClass {
    /// Stable label for span trees and attribution groups (`device`,
    /// `tree600`, `cpu`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            BackendClass::Device => "device".to_string(),
            BackendClass::Tree { theta_milli } => format!("tree{theta_milli}"),
            BackendClass::Cpu => "cpu".to_string(),
        }
    }
}

/// Server configuration: tenants, fleet, storm, and resilience budgets.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tenant table (index = tenant id in requests).
    pub tenants: Vec<TenantSpec>,
    /// Device fleet.
    pub backends: Vec<BackendKind>,
    /// Fault storm the fleet serves through.
    pub storm: StormConfig,
    /// Global admission-queue bound.
    pub max_queue: usize,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Snapshot cadence of running jobs (steps between checkpoint spills).
    pub checkpoint_every: usize,
    /// In-place device-loss recoveries per segment before the loss becomes
    /// terminal and the job migrates.
    pub recoveries_per_segment: u32,
    /// Host CPU evaluator slots for dispatch-time degradation. Stranded
    /// jobs (migration budget spent) always get the CPU regardless.
    pub cpu_slots: usize,
    /// Modeled host-CPU force rate, pair interactions per virtual second.
    pub cpu_pairs_per_s: f64,
    /// Directory for per-job checkpoint spill files.
    pub spill_dir: PathBuf,
    /// Flight-recorder tuning (always-on bounded ring + post-mortems).
    pub flight: FlightConfig,
    /// Catalog part every fleet device is built as (grid + cost tables).
    pub arch: DeviceArch,
    /// Force kernel every device backend (and the device golden) launches.
    /// Single cards and rings stay bitwise-compatible per kernel kind, so
    /// the fleet runs one kind rather than mixing classes.
    pub force_kernel: ForceKernelKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenants: vec![TenantSpec::default()],
            backends: vec![BackendKind::SingleCard],
            storm: StormConfig::default(),
            max_queue: 256,
            breaker: BreakerConfig::default(),
            checkpoint_every: 2,
            recoveries_per_segment: 1,
            cpu_slots: 1,
            cpu_pairs_per_s: 2.0e8,
            spill_dir: std::env::temp_dir(),
            flight: FlightConfig::default(),
            arch: DeviceArch::n300(),
            force_kernel: ForceKernelKind::Elementwise,
        }
    }
}

/// Per-backend tally for the campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendReport {
    /// Backend label (`card0`, `ring1x2+1`, …).
    pub label: String,
    /// Jobs whose final segment completed here.
    pub completed: u64,
    /// Terminal faults charged here (each one migrated a job away).
    pub terminal_faults: u64,
    /// Times the breaker quarantined this backend.
    pub quarantines: u32,
    /// Spare promotions inside ring evaluations (rings only).
    pub failovers: u64,
}

/// Everything one campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-job rows, in job-id order.
    pub jobs: Vec<ServedJob>,
    /// Aggregated census (per-tenant p50/p99, shed counts, migrations).
    pub census: ServingCensus,
    /// Per-backend tallies.
    pub backends: Vec<BackendReport>,
    /// Total breaker trips across the fleet.
    pub quarantines: u64,
    /// Jobs that ran (or finished) on the CPU evaluator.
    pub cpu_fallbacks: u64,
    /// Order-independent digest of `(job_id, disposition, state_hash)` —
    /// two replays of the same campaign must produce equal digests.
    pub digest: u64,
    /// Per-job causal span trees in job-id order — one per admitted job,
    /// each tiling the job's sojourn on the virtual clock (the input to
    /// `tt_telemetry::attribution`).
    pub spans: Vec<JobSpanTree>,
    /// Flight-recorder triggers (golden mismatch / job loss / breaker
    /// trip), with dump paths where post-mortems were written.
    pub postmortems: Vec<Postmortem>,
    /// Events evicted from the flight-recorder ring over the campaign.
    pub flight_dropped: u64,
}

// ---------------------------------------------------------------------------
// Internals.
// ---------------------------------------------------------------------------

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over the FP64 bit patterns of positions and velocities — the
/// bitwise-identity fingerprint of a final state.
#[must_use]
pub fn state_hash(system: &ParticleSystem) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for field in [&system.pos, &system.vel] {
        for v in field {
            for &c in v {
                fnv1a(&mut h, &c.to_bits().to_le_bytes());
            }
        }
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    // splitmix64 of a ^ rotated b: cheap seed derivation.
    let mut z = a ^ b.rotate_left(23) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Arrival(usize),
    /// A device slot's busy window ended.
    SlotFree(usize),
    /// A quarantine window ended (probation begins).
    QuarantineEnd(usize),
    /// A CPU slot freed up.
    CpuFree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    /// Virtual time as monotone bits (non-negative finite f64 only).
    t_bits: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t_bits, self.seq).cmp(&(other.t_bits, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Idle,
    Busy,
}

struct Slot {
    kind: BackendKind,
    storm: BackendStorm,
    state: SlotState,
    breaker: Breaker,
    completed: u64,
    terminal_faults: u64,
    failovers: u64,
    /// Segments started here — salts each segment's device seeds.
    segments: u64,
}

/// Golden cache key: backend class + everything that shapes the physics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GoldenKey {
    class: BackendClass,
    n: usize,
    ic: IcKind,
    ic_seed: u64,
    cycles: usize,
    steps_per_cycle: usize,
    dt_bits: u64,
    eps_bits: u64,
    num_cores: usize,
    /// Block-step spec, `(eta bits, levels)` — a block job and a shared-step
    /// job with otherwise equal specs follow different trajectories.
    blocks: Option<(u64, u32)>,
}

impl GoldenKey {
    fn new(class: BackendClass, req: &JobRequest) -> Self {
        GoldenKey {
            class,
            n: req.n,
            ic: req.ic,
            ic_seed: req.ic_seed,
            cycles: req.sim.cycles,
            steps_per_cycle: req.sim.steps_per_cycle,
            dt_bits: req.sim.dt.to_bits(),
            eps_bits: req.sim.eps.to_bits(),
            num_cores: req.sim.num_cores,
            blocks: req.sim.blocks.map(|b| (b.eta.to_bits(), b.levels)),
        }
    }
}

struct Campaign<'a> {
    cfg: &'a ServerConfig,
    slots: Vec<Slot>,
    adm: Admission,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    cpu_busy: usize,
    arrivals: Vec<(f64, JobRequest)>,
    jobs: Vec<ServedJob>,
    goldens: HashMap<GoldenKey, u64>,
    quarantines: u64,
    cpu_fallbacks: u64,
    trace: Option<&'a dyn TraceSink>,
    recorder: FlightRecorder,
    spans: Vec<JobSpanTree>,
}

/// What one device segment produced. The outcome is boxed: `Done` would
/// otherwise dwarf `Failed` (clippy's large-variant lint).
enum Segment {
    Done { outcome: Box<ResilientOutcome>, system: ParticleSystem, service_s: f64 },
    Failed { error: LaunchError, service_s: f64, retries: u64 },
}

fn timing_seconds(t: &PipelineTiming) -> f64 {
    t.device_seconds + t.io_seconds
}

/// Adapt a block-step outcome to the shared-step resilient shape the
/// serving loop accounts in; block iterations stand in for steps. Ring
/// failovers are tallied by the caller from the pipeline's own counters.
fn block_to_resilient(b: BlockResilientOutcome) -> ResilientOutcome {
    ResilientOutcome {
        outcome: b.outcome,
        recoveries: b.recoveries,
        steps_replayed: b.iterations_replayed,
        failovers: 0,
        checkpoint_spills: b.checkpoint_spills,
        spill_seconds: b.spill_seconds,
    }
}

/// Tree tuning for a fleet slot: θ from the backend kind, default leaf
/// size, single-threaded walk (any thread count is bitwise-identical; one
/// thread keeps the serving loop's host footprint predictable).
fn tree_config(theta_milli: u32) -> nbody_tt::TreeConfig {
    nbody_tt::TreeConfig {
        theta: f64::from(theta_milli) / 1000.0,
        threads: 1,
        ..nbody_tt::TreeConfig::default()
    }
}

impl<'a> Campaign<'a> {
    fn push(&mut self, t: f64, kind: EvKind) {
        assert!(t.is_finite() && t >= 0.0, "virtual time must be non-negative finite");
        self.seq += 1;
        self.heap.push(Reverse(Ev { t_bits: t.to_bits(), seq: self.seq, kind }));
    }

    /// One server event, fanned out to the (optional) device-trace sink
    /// and to the always-on flight-recorder ring at virtual time `t_s`.
    fn note(&mut self, t_s: f64, name: &str, args: &[(&str, u64)]) {
        if let Some(sink) = self.trace {
            sink.host_instant(name, args);
        }
        self.recorder.note(t_s, name, args);
    }

    /// Point-in-time server state for a post-mortem dump.
    fn snapshot(&self, t_s: f64) -> ServerSnapshot {
        ServerSnapshot {
            t_s,
            queue_depth: self.adm.depth(),
            tenant_depths: (0..self.cfg.tenants.len()).map(|t| self.adm.tenant_depth(t)).collect(),
            cpu_busy: self.cpu_busy,
            quarantines: self.quarantines,
            jobs_recorded: self.jobs.len(),
            slots: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, s)| SlotSnapshot {
                    label: s.kind.label(i),
                    busy: s.state == SlotState::Busy,
                    breaker: breaker_label(s.breaker.state()),
                    completed: s.completed,
                    terminal_faults: s.terminal_faults,
                    trips: s.breaker.trips,
                })
                .collect(),
        }
    }

    /// Close a finished span tree into the report. A malformed tree is an
    /// emitter bug, not a servable condition — fail loudly.
    fn close_span(&mut self, jb: JobSpanBuilder, outcome: &str, class: &str, finish_s: f64) {
        let tree = jb
            .finish(outcome, class, finish_s)
            .unwrap_or_else(|e| panic!("span emitter produced a malformed tree: {e}"));
        self.spans.push(tree);
    }

    /// Fresh seeded devices for segment `segment` of backend `slot`.
    fn devices(&self, slot: usize, segment: u64, count: usize, base: usize) -> Vec<Arc<Device>> {
        (0..count)
            .map(|m| {
                let seed =
                    mix(self.cfg.storm.seed, mix(slot as u64, segment ^ ((base + m) as u64) << 48));
                Device::new(
                    base + m,
                    DeviceConfig {
                        seed,
                        faults: self.slots[slot].storm.faults,
                        reset_failure_prob: 0.0,
                        ..self.cfg.arch.device_config()
                    },
                )
            })
            .collect()
    }

    /// Run one device segment of `req` on `slot`, either from scratch or
    /// resumed from `resume` = (post-checkpoint state, step).
    fn run_segment(
        &mut self,
        slot: usize,
        req: &JobRequest,
        resume: Option<(ParticleSystem, usize)>,
        spill: &SpillConfig,
    ) -> Segment {
        let segment = self.slots[slot].segments;
        self.slots[slot].segments += 1;
        let recovery = RecoveryConfig {
            checkpoint_every: self.cfg.checkpoint_every,
            retry: RetryPolicy::jittered(mix(self.cfg.storm.seed, req.job_id)),
            max_recoveries: self.cfg.recoveries_per_segment,
            spill: Some(spill.clone()),
        };
        let (mut system, start) = match resume {
            Some((system, step)) => (system, Some(step)),
            None => (req.ics(), None),
        };

        let kind = self.slots[slot].kind;
        let scheduled = self.slots[slot].storm.scheduled_losses.clone();
        match kind {
            BackendKind::SingleCard => {
                let dev = self.devices(slot, segment, 1, 0).remove(0);
                for &at in &scheduled {
                    dev.faults().schedule(FaultClass::DeviceLoss, at);
                }
                let eval = match SingleCardEvaluator::new_with_kernel(
                    Arc::clone(&dev),
                    req.n,
                    req.sim.eps,
                    req.sim.num_cores,
                    self.cfg.force_kernel,
                ) {
                    Ok(e) => Arc::new(e),
                    Err(e) => {
                        return Segment::Failed {
                            error: LaunchError::from(e),
                            service_s: 0.0,
                            retries: 0,
                        }
                    }
                };
                // Block jobs always (re)run the hierarchy from its start —
                // migration never hands them a mid-job resume point — so the
                // device timing they accumulate reflects dynamically packed
                // active-set launches, which is exactly what gets billed.
                let result = match (start, req.sim.blocks.is_some()) {
                    (_, true) => {
                        run_block_simulation_resilient(&eval, &mut system, req.sim, recovery)
                            .map(block_to_resilient)
                    }
                    (None, false) => {
                        run_simulation_resilient(&eval, &mut system, req.sim, recovery)
                    }
                    (Some(step), false) => {
                        resume_simulation_resilient(&eval, &mut system, step, req.sim, recovery)
                    }
                };
                match result {
                    Ok(outcome) => {
                        let service_s = outcome.outcome.timing.as_ref().map_or(0.0, timing_seconds);
                        Segment::Done { outcome: Box::new(outcome), system, service_s }
                    }
                    Err(error) => {
                        let t = eval.timing().unwrap_or_default();
                        Segment::Failed { error, service_s: timing_seconds(&t), retries: t.retries }
                    }
                }
            }
            BackendKind::Ring { members, spares } => {
                let devs = self.devices(slot, segment, members, 0);
                let spare_devs = self.devices(slot, segment, spares, members);
                for &at in &scheduled {
                    devs[0].faults().schedule(FaultClass::DeviceLoss, at);
                }
                let ring = match MultiDevicePipeline::with_spares_kernel(
                    &devs,
                    &spare_devs,
                    req.n,
                    req.sim.eps,
                    req.sim.num_cores,
                    self.cfg.force_kernel,
                ) {
                    Ok(r) => Arc::new(r),
                    Err(e) => {
                        return Segment::Failed {
                            error: LaunchError::from(e),
                            service_s: 0.0,
                            retries: 0,
                        }
                    }
                };
                let result = match (start, req.sim.blocks.is_some()) {
                    (_, true) => {
                        run_block_simulation_resilient(&ring, &mut system, req.sim, recovery)
                            .map(block_to_resilient)
                    }
                    (None, false) => {
                        run_simulation_resilient(&ring, &mut system, req.sim, recovery)
                    }
                    (Some(step), false) => {
                        resume_simulation_resilient(&ring, &mut system, step, req.sim, recovery)
                    }
                };
                let rt = MultiDevicePipeline::timing(&ring);
                self.slots[slot].failovers += rt.failovers;
                match result {
                    Ok(mut outcome) => {
                        outcome.failovers = rt.failovers;
                        let service_s = rt.device_seconds
                            + rt.comm_seconds
                            + outcome.outcome.timing.as_ref().map_or(0.0, |t| t.io_seconds);
                        Segment::Done { outcome: Box::new(outcome), system, service_s }
                    }
                    Err(error) => Segment::Failed {
                        error,
                        service_s: rt.device_seconds + rt.comm_seconds + rt.pipeline.io_seconds,
                        retries: rt.pipeline.retries,
                    },
                }
            }
            BackendKind::TreeHost { theta_milli } => {
                // No device, no storm: the tree backend's faults are the
                // host's (none in this model). Service time is charged from
                // the evaluator's deterministic interaction counts at the
                // modeled host rate, not wall clock, so replays stay
                // bitwise.
                let eval = Arc::new(TreeForceEvaluator::host(
                    req.n,
                    req.sim.eps,
                    tree_config(theta_milli),
                ));
                let result = match (start, req.sim.blocks.is_some()) {
                    (_, true) => {
                        run_block_simulation_resilient(&eval, &mut system, req.sim, recovery)
                            .map(block_to_resilient)
                    }
                    (None, false) => {
                        run_simulation_resilient(&eval, &mut system, req.sim, recovery)
                    }
                    (Some(step), false) => {
                        resume_simulation_resilient(&eval, &mut system, step, req.sim, recovery)
                    }
                };
                match result {
                    Ok(outcome) => {
                        // The walk counters tally only evaluated (active)
                        // targets, so block jobs are charged their actual
                        // active-count interactions here with no extra case.
                        let service_s =
                            eval.tree_cost().total_interactions() as f64 / self.cfg.cpu_pairs_per_s;
                        Segment::Done { outcome: Box::new(outcome), system, service_s }
                    }
                    Err(error) => Segment::Failed { error, service_s: 0.0, retries: 0 },
                }
            }
        }
    }

    /// Fault-free golden fingerprint for `req` on the given backend class,
    /// computed once per distinct spec and cached.
    fn golden(&mut self, class: BackendClass, req: &JobRequest) -> u64 {
        let key = GoldenKey::new(class, req);
        if let Some(&h) = self.goldens.get(&key) {
            return h;
        }
        let mut system = req.ics();
        let blocks = req.sim.blocks.is_some();
        match class {
            BackendClass::Cpu => {
                if blocks {
                    let _ = run_cpu_block_simulation(&mut system, req.sim, 1);
                } else {
                    let _ = run_cpu_simulation(&mut system, req.sim, 1);
                }
            }
            BackendClass::Device => {
                let dev = Device::new(
                    usize::MAX / 2, // outside fleet ids; fault-free
                    DeviceConfig { reset_failure_prob: 0.0, ..self.cfg.arch.device_config() },
                );
                let eval = Arc::new(
                    SingleCardEvaluator::new_with_kernel(
                        dev,
                        req.n,
                        req.sim.eps,
                        req.sim.num_cores,
                        self.cfg.force_kernel,
                    )
                    .expect("fault-free golden pipeline construction"),
                );
                if blocks {
                    let _ = run_block_simulation(&eval, &mut system, req.sim);
                } else {
                    let _ = run_simulation(&eval, &mut system, req.sim);
                }
            }
            BackendClass::Tree { theta_milli } => {
                let eval = Arc::new(TreeForceEvaluator::host(
                    req.n,
                    req.sim.eps,
                    tree_config(theta_milli),
                ));
                if blocks {
                    let _ = run_block_simulation(&eval, &mut system, req.sim);
                } else {
                    let _ = run_simulation(&eval, &mut system, req.sim);
                }
            }
        }
        let h = state_hash(&system);
        self.goldens.insert(key, h);
        h
    }

    /// CPU service model for *shared-step* jobs: pair interactions over the
    /// whole job at the modeled host rate. Block jobs are charged from
    /// their actual active-count evaluations in [`Campaign::finish_on_cpu`].
    fn cpu_service_s(&self, req: &JobRequest) -> f64 {
        req.cost() / self.cfg.cpu_pairs_per_s
    }

    /// Record a typed shed. `jb` carries the span tree of a job that got
    /// past admission (queue + any attempts so far); sheds at the door
    /// get a fresh queue-only tree covering `[arrival_s, now_s]`.
    fn record_shed(
        &mut self,
        job: &JobRequest,
        arrival_s: f64,
        now_s: f64,
        why: &Rejection,
        jb: Option<JobSpanBuilder>,
    ) {
        self.note(now_s, "job_shed", &[("job", job.job_id), ("tenant", job.tenant as u64)]);
        let jb = jb.unwrap_or_else(|| {
            let mut jb = JobSpanBuilder::new(job.job_id, job.tenant, arrival_s);
            jb.begin(JobPhase::Queue, None, "-", 0, arrival_s);
            jb.end(now_s, 0);
            jb
        });
        self.close_span(jb, "shed", "-", now_s);
        let snap = self.snapshot(now_s);
        self.recorder.trigger(TriggerKind::JobLoss, Some(job.job_id), &why.reason(), &snap);
        self.jobs.push(ServedJob {
            job_id: job.job_id,
            tenant: job.tenant,
            n: job.n,
            arrival_s,
            start_s: now_s,
            finish_s: now_s,
            backend: "-".into(),
            disposition: JobDisposition::Shed { reason: why.reason() },
            migrations: 0,
            recoveries: 0,
            retries: 0,
            state_hash: 0,
            bitwise_golden: None,
        });
    }

    /// A device slot is dispatchable if idle and its breaker admits.
    fn idle_device_slot(&self, now_s: f64) -> Option<usize> {
        self.slots.iter().position(|s| s.state == SlotState::Idle && s.breaker.admits(now_s))
    }

    /// True when no device slot could possibly take a job soon: none busy
    /// (nothing will free up) and none admitting (all quarantined).
    fn fleet_exhausted(&self, now_s: f64) -> bool {
        self.slots.iter().all(|s| s.state == SlotState::Idle && !s.breaker.admits(now_s))
    }

    /// Pop the WFQ-next job that has not blown its queue deadline; shed the
    /// expired ones typed.
    fn next_live_job(&mut self, now_s: f64) -> Option<QueuedJob> {
        while let Some(job) = self.adm.take_next() {
            let waited = now_s - job.arrival_s;
            if waited > job.req.deadline_s {
                let why = Rejection::DeadlineExceeded { waited_s: waited };
                self.record_shed(&job.req, job.arrival_s, now_s, &why, None);
                continue;
            }
            return Some(job);
        }
        None
    }

    /// Execute `job` starting on device slot `first`, migrating on terminal
    /// faults, degrading to CPU when the device options run out.
    fn execute_on_device(&mut self, first: usize, job: QueuedJob, now_s: f64) {
        let req = job.req;
        let spill = SpillConfig {
            keep_last: 2,
            ..SpillConfig::new(self.cfg.spill_dir.join(format!("serve-job{}.ckpt", req.job_id)))
        };
        let mut slot = first;
        let mut elapsed = 0.0f64;
        let mut migrations: u32 = 0;
        let mut retries: u64 = 0;
        let mut recoveries: u32 = 0;
        let mut resume: Option<(ParticleSystem, usize)> = None;
        // Span tree: queue phase [arrival, dispatch], then one phase per
        // attempt starting at `seg_start` (service or retry, plus
        // zero-width migration markers between attempts).
        let mut jb = JobSpanBuilder::new(req.job_id, req.tenant, job.arrival_s);
        jb.begin(JobPhase::Queue, None, "-", 0, job.arrival_s);
        jb.end(now_s, 0);
        let mut attempt: u32 = 1;
        let mut seg_start = now_s;

        self.slots[slot].state = SlotState::Busy;
        self.note(now_s, "job_dispatch", &[("job", req.job_id), ("slot", slot as u64)]);

        loop {
            let segment = self.run_segment(slot, &req, resume.take(), &spill);
            match segment {
                Segment::Done { outcome, system, service_s } => {
                    elapsed += service_s;
                    let finish = now_s + elapsed;
                    let seg_retries = outcome.outcome.timing.as_ref().map_or(0, |t| t.retries);
                    retries += seg_retries;
                    recoveries += outcome.recoveries;
                    self.push(finish, EvKind::SlotFree(slot));
                    self.slots[slot].breaker.record_success();
                    self.slots[slot].completed += 1;
                    let class = self.slots[slot].kind.class();
                    let label = self.slots[slot].kind.label(slot);
                    let golden = self.golden(class, &req);
                    let h = state_hash(&system);
                    self.note(
                        finish,
                        "job_complete",
                        &[("job", req.job_id), ("slot", slot as u64)],
                    );
                    jb.begin(JobPhase::Service, Some(slot as u32), &label, attempt, seg_start);
                    jb.end(finish, seg_retries);
                    self.close_span(jb, "device", &class.label(), finish);
                    if h != golden {
                        let snap = self.snapshot(finish);
                        self.recorder.trigger(
                            TriggerKind::GoldenMismatch,
                            Some(req.job_id),
                            &format!("state {h:#018x} != golden {golden:#018x} on {label}"),
                            &snap,
                        );
                    }
                    self.jobs.push(ServedJob {
                        job_id: req.job_id,
                        tenant: req.tenant,
                        n: req.n,
                        arrival_s: job.arrival_s,
                        start_s: now_s,
                        finish_s: finish,
                        backend: self.slots[slot].kind.label(slot),
                        disposition: JobDisposition::CompletedDevice,
                        migrations,
                        recoveries,
                        retries,
                        state_hash: h,
                        bitwise_golden: Some(h == golden),
                    });
                    spill.cleanup();
                    return;
                }
                Segment::Failed { error, service_s, retries: r } => {
                    elapsed += service_s;
                    retries += r;
                    let fault_t = now_s + elapsed;
                    let label = self.slots[slot].kind.label(slot);
                    // The failed attempt is a retry phase: work and backoff
                    // the terminal fault threw away.
                    jb.begin(JobPhase::Retry, Some(slot as u32), &label, attempt, seg_start);
                    jb.end(fault_t, r);
                    seg_start = fault_t;
                    // The slot frees at the fault; the breaker decides
                    // whether it is dispatchable after that.
                    self.push(fault_t, EvKind::SlotFree(slot));
                    self.slots[slot].terminal_faults += 1;
                    if let Some(until) = self.slots[slot].breaker.record_fault(fault_t) {
                        self.quarantines += 1;
                        self.push(until, EvKind::QuarantineEnd(slot));
                        self.note(
                            fault_t,
                            "backend_quarantined",
                            &[
                                ("slot", slot as u64),
                                ("trips", u64::from(self.slots[slot].breaker.trips)),
                            ],
                        );
                        let snap = self.snapshot(fault_t);
                        self.recorder.trigger(
                            TriggerKind::BreakerTrip,
                            Some(req.job_id),
                            &format!(
                                "{label} tripped (trip {}) at fault of job {}",
                                self.slots[slot].breaker.trips, req.job_id
                            ),
                            &snap,
                        );
                    }

                    // Checkpoint IO failure: neither recovery nor migration
                    // can be guaranteed — shed, typed.
                    if let LaunchError::Device(TensixError::CheckpointIo { ref message, .. }) =
                        error
                    {
                        let why = Rejection::CheckpointUnavailable { message: message.clone() };
                        self.record_shed(&req, job.arrival_s, fault_t, &why, Some(jb));
                        spill.cleanup();
                        return;
                    }

                    // Migrate: restore the newest checkpoint and resume on
                    // another admitting slot *of the same backend class* —
                    // a checkpoint resumed across classes (device ↔ tree)
                    // would finish with a state matching neither golden.
                    // (The failed slot is still Busy until its SlotFree
                    // fires, so it is never re-picked here.)
                    let class = self.slots[slot].kind.class();
                    let target = (migrations < req.max_migrations)
                        .then(|| {
                            self.slots.iter().position(|s| {
                                s.state == SlotState::Idle
                                    && s.kind.class() == class
                                    && s.breaker.admits(fault_t)
                            })
                        })
                        .flatten();
                    match target {
                        Some(next) => {
                            if req.sim.blocks.is_some() {
                                // Block checkpoints carry the whole timestep
                                // hierarchy in their own spill format; the
                                // migrated segment replays the hierarchy from
                                // its start, which keeps the final state on
                                // the block golden (re-derived, not resumed).
                                resume = None;
                            } else if spill.checkpoints_on_disk().is_empty() {
                                // The loss landed before the first checkpoint
                                // (during init): nothing was computed yet, so
                                // the migrated segment restarts from step 0.
                                resume = None;
                            } else {
                                match latest_checkpoint(&spill) {
                                    Ok((system, step)) => resume = Some((system, step)),
                                    Err(e) => {
                                        // Corrupt checkpoint: typed shed.
                                        let why = Rejection::CheckpointUnavailable {
                                            message: e.to_string(),
                                        };
                                        self.record_shed(
                                            &req,
                                            job.arrival_s,
                                            fault_t,
                                            &why,
                                            Some(jb),
                                        );
                                        spill.cleanup();
                                        return;
                                    }
                                }
                            }
                            migrations += 1;
                            attempt += 1;
                            slot = next;
                            self.slots[slot].state = SlotState::Busy;
                            // Checkpoint restore is modeled free today; the
                            // zero-width phase marks where its cost belongs.
                            let label = self.slots[slot].kind.label(slot);
                            jb.begin(
                                JobPhase::Migration,
                                Some(slot as u32),
                                &label,
                                attempt,
                                fault_t,
                            );
                            jb.end(fault_t, 0);
                            self.note(
                                fault_t,
                                "job_migrate",
                                &[("job", req.job_id), ("to", slot as u64)],
                            );
                            continue;
                        }
                        _ => {
                            // No device can take it: graceful degradation.
                            // The CPU evaluator restarts from step 0 (its
                            // arithmetic differs bitwise from the device
                            // class, so resuming a device checkpoint would
                            // produce a state matching *neither* golden).
                            spill.cleanup();
                            self.finish_on_cpu(
                                req,
                                job.arrival_s,
                                now_s,
                                fault_t,
                                migrations,
                                recoveries,
                                retries,
                                jb,
                                attempt + 1,
                            );
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Run `req` to completion on the host CPU evaluator, starting at
    /// virtual time `start_service_s` (infallible; always accepted). `jb`
    /// is the job's span tree so far (queue + any device attempts); the
    /// CPU service becomes its closing degrade phase, numbered `attempt`.
    /// Returns the virtual finish time so the caller can free the CPU slot.
    #[allow(clippy::too_many_arguments)]
    fn finish_on_cpu(
        &mut self,
        req: JobRequest,
        arrival_s: f64,
        start_s: f64,
        start_service_s: f64,
        migrations: u32,
        recoveries: u32,
        retries: u64,
        mut jb: JobSpanBuilder,
        attempt: u32,
    ) -> f64 {
        self.cpu_fallbacks += 1;
        let mut system = req.ics();
        let service_s = if req.sim.blocks.is_some() {
            // Active-count accounting: a block job is charged the particle
            // evaluations its hierarchy actually ran (× n sources each), not
            // the shared-step every-particle-every-step ceiling.
            let out = run_cpu_block_simulation(&mut system, req.sim, 1)
                .unwrap_or_else(|e| panic!("host CPU evaluator cannot fault: {e}"));
            out.report.particle_evaluations as f64 * req.n as f64 / self.cfg.cpu_pairs_per_s
        } else {
            let _ = run_cpu_simulation(&mut system, req.sim, 1);
            self.cpu_service_s(&req)
        };
        let finish = start_service_s + service_s;
        let golden = self.golden(BackendClass::Cpu, &req);
        let h = state_hash(&system);
        self.note(finish, "job_degraded_cpu", &[("job", req.job_id)]);
        jb.begin(JobPhase::Degrade, None, "cpu", attempt, start_service_s);
        jb.end(finish, 0);
        self.close_span(jb, "cpu-degraded", "cpu", finish);
        if h != golden {
            let snap = self.snapshot(finish);
            self.recorder.trigger(
                TriggerKind::GoldenMismatch,
                Some(req.job_id),
                &format!("state {h:#018x} != golden {golden:#018x} on cpu"),
                &snap,
            );
        }
        self.jobs.push(ServedJob {
            job_id: req.job_id,
            tenant: req.tenant,
            n: req.n,
            arrival_s,
            start_s,
            finish_s: finish,
            backend: "cpu".into(),
            disposition: JobDisposition::DegradedCpu,
            migrations,
            recoveries,
            retries,
            state_hash: h,
            bitwise_golden: Some(h == golden),
        });
        finish
    }

    /// Dispatch as many queued jobs as the fleet can take at `now_s`.
    fn dispatch(&mut self, now_s: f64) {
        loop {
            if let Some(slot) = self.idle_device_slot(now_s) {
                let Some(job) = self.next_live_job(now_s) else { return };
                self.execute_on_device(slot, job, now_s);
            } else if self.fleet_exhausted(now_s) && self.cpu_busy < self.cfg.cpu_slots {
                // Every device is quarantined and none is even busy: serve
                // on the CPU rather than let the queue rot to its deadlines.
                let Some(job) = self.next_live_job(now_s) else { return };
                self.cpu_busy += 1;
                let mut jb = JobSpanBuilder::new(job.req.job_id, job.req.tenant, job.arrival_s);
                jb.begin(JobPhase::Queue, None, "-", 0, job.arrival_s);
                jb.end(now_s, 0);
                let finish =
                    self.finish_on_cpu(job.req, job.arrival_s, now_s, now_s, 0, 0, 0, jb, 1);
                self.push(finish, EvKind::CpuFree);
            } else {
                return;
            }
        }
    }

    fn run(mut self) -> CampaignReport {
        for i in 0..self.arrivals.len() {
            let t = self.arrivals[i].0;
            self.push(t, EvKind::Arrival(i));
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            let now_s = f64::from_bits(ev.t_bits);
            match ev.kind {
                EvKind::Arrival(i) => {
                    let (arrival_s, req) = self.arrivals[i];
                    self.note(
                        arrival_s,
                        "job_arrive",
                        &[("job", req.job_id), ("tenant", req.tenant as u64)],
                    );
                    if let Err(why) = self.adm.offer(req, arrival_s) {
                        self.record_shed(&req, arrival_s, arrival_s, &why, None);
                    }
                }
                EvKind::SlotFree(slot) => {
                    self.slots[slot].state = SlotState::Idle;
                }
                EvKind::QuarantineEnd(slot) => {
                    self.slots[slot].breaker.tick(now_s);
                }
                EvKind::CpuFree => {
                    self.cpu_busy = self.cpu_busy.saturating_sub(1);
                }
            }
            self.dispatch(now_s);
        }

        self.jobs.sort_by_key(|j| j.job_id);
        self.spans.sort_by_key(|t| t.job_id);
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for j in &self.jobs {
            fnv1a(&mut digest, &j.job_id.to_le_bytes());
            fnv1a(&mut digest, j.disposition.tag().as_bytes());
            fnv1a(&mut digest, &j.state_hash.to_le_bytes());
        }
        let census = ServingCensus::from_jobs(&self.jobs);
        let backends = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| BackendReport {
                label: s.kind.label(i),
                completed: s.completed,
                terminal_faults: s.terminal_faults,
                quarantines: s.breaker.trips,
                failovers: s.failovers,
            })
            .collect();
        CampaignReport {
            jobs: self.jobs,
            census,
            backends,
            quarantines: self.quarantines,
            cpu_fallbacks: self.cpu_fallbacks,
            digest,
            spans: self.spans,
            postmortems: self.recorder.take_postmortems(),
            flight_dropped: self.recorder.dropped(),
        }
    }
}

/// Run one serving campaign: replay `arrivals` through the fleet under the
/// configured storm and return every job's outcome plus the census.
///
/// Arrivals may be in any order; they are replayed in `(time, job_id)`
/// order. Pass a [`TraceSink`] to get server-level instants
/// (`job_arrive` / `job_dispatch` / `job_migrate` / `backend_quarantined` /
/// `job_complete` / `job_shed` / `job_degraded_cpu`) in the device trace.
///
/// # Panics
/// Panics on non-finite arrival times and on tenant tables with
/// non-positive weights.
#[must_use]
pub fn run_campaign(
    cfg: &ServerConfig,
    arrivals: &[(f64, JobRequest)],
    trace: Option<&dyn TraceSink>,
) -> CampaignReport {
    let mut sorted = arrivals.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.job_id.cmp(&b.1.job_id)));
    let slots = cfg
        .backends
        .iter()
        .enumerate()
        .map(|(i, &kind)| Slot {
            kind,
            storm: backend_storm(&cfg.storm, i),
            state: SlotState::Idle,
            breaker: Breaker::new(cfg.breaker),
            completed: 0,
            terminal_faults: 0,
            failovers: 0,
            segments: 0,
        })
        .collect();
    Campaign {
        cfg,
        slots,
        adm: Admission::new(&cfg.tenants, cfg.max_queue),
        heap: BinaryHeap::new(),
        seq: 0,
        cpu_busy: 0,
        arrivals: sorted,
        jobs: Vec::new(),
        goldens: HashMap::new(),
        quarantines: 0,
        cpu_fallbacks: 0,
        trace,
        recorder: FlightRecorder::new(cfg.flight.clone()),
        spans: Vec::new(),
    }
    .run()
}
