//! Declarative device catalog — hardware parts as data, not code.
//!
//! Modeled on tenstorrent/polaris' `tt_wh.yaml` device descriptions: one
//! [`DeviceArch`] entry names a part (n150, n300, or a custom spec) and
//! carries the per-pipe throughputs, core grid, clock and DRAM geometry
//! that the cost tables and the analytic performance model derive from.
//! The built-in entries reproduce the repo's calibrated n300 numbers
//! exactly — [`DeviceArch::cost_model`] of either built-in part equals
//! [`CostModel::default`] — so swapping the hard-coded constants for
//! catalog lookups changes no paper-pinned result.
//!
//! Per-pipe throughputs (polaris `tt_wh.yaml`, Snippet 3): the matrix pipe
//! retires 2048 bf16 MACs/clk per core (half rate in FP32), the vector
//! (SFPU) pipe 32 fp32 lanes/clk. A 32×32×32 tile matmul is therefore
//! 32768/2048 = 16 cycles in BF16 and 32 cycles in FP32; a 1024-lane
//! element-wise SFPU op is 32 cycles.

use crate::cost::{ComputeCosts, CostModel, DramCosts};
use crate::device::DeviceConfig;
use crate::grid::GridSize;
use crate::tile::{TILE_DIM, TILE_ELEMS};

/// MACs in one 32×32×32 tile matmul.
const TILE_MACS: u64 = (TILE_DIM * TILE_DIM * TILE_DIM) as u64;

/// One catalog entry: a Wormhole-family part described by data.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceArch {
    /// Part name (`n150`, `n300`, or a custom label).
    pub name: String,
    /// Chips on the card (n150: 1, n300: 2). Each chip is one simulated
    /// [`crate::Device`]; a multi-chip card runs as an Ethernet ring of
    /// per-chip devices.
    pub chips: usize,
    /// Tensix core grid per chip (n150: 8×9 = 72, n300: 8×8 = 64).
    pub grid: GridSize,
    /// Tensix clock in GHz.
    pub clock_ghz: f64,
    /// Matrix-pipe (FPU) throughput per core: bf16 MACs per clock. FP32
    /// runs at half this rate.
    pub matrix_bf16_macs_per_clk: u64,
    /// Vector-pipe (SFPU) throughput per core: fp32 lanes per clock.
    pub vector_fp32_lanes_per_clk: u64,
    /// GDDR6 channels per chip.
    pub dram_channels: usize,
    /// Bandwidth per DRAM channel, GB/s.
    pub dram_gbps_per_channel: f64,
    /// Ethernet links per chip (for ring scaling).
    pub eth_links: usize,
}

impl DeviceArch {
    /// The n150 card: one chip, 8×9 = 72 Tensix cores, 6 GDDR6 channels.
    #[must_use]
    pub fn n150() -> Self {
        DeviceArch {
            name: "n150".into(),
            chips: 1,
            grid: GridSize { x: 8, y: 9 },
            clock_ghz: 1.0,
            matrix_bf16_macs_per_clk: 2048,
            vector_fp32_lanes_per_clk: 32,
            dram_channels: 6,
            dram_gbps_per_channel: 48.0,
            eth_links: 16,
        }
    }

    /// The n300 card: two chips of 8×8 = 64 Tensix cores (128 total) — the
    /// paper's part; its per-chip numbers are the repo's calibrated
    /// defaults.
    #[must_use]
    pub fn n300() -> Self {
        DeviceArch {
            name: "n300".into(),
            chips: 2,
            grid: GridSize::WORMHOLE,
            clock_ghz: 1.0,
            matrix_bf16_macs_per_clk: 2048,
            vector_fp32_lanes_per_clk: 32,
            dram_channels: 6,
            dram_gbps_per_channel: 48.0,
            eth_links: 16,
        }
    }

    /// Tensix cores on one chip.
    #[must_use]
    pub fn cores_per_chip(&self) -> usize {
        self.grid.num_cores()
    }

    /// Tensix cores on the whole card (all chips).
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.chips * self.cores_per_chip()
    }

    /// Clock in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1.0e9
    }

    /// Aggregate DRAM bandwidth per chip, bytes/s.
    #[must_use]
    pub fn dram_bytes_per_s(&self) -> f64 {
        self.dram_channels as f64 * self.dram_gbps_per_channel * 1.0e9
    }

    /// Cycles for one tile matmul at the BF16 matrix-pipe rate.
    #[must_use]
    pub fn matmul_cycles_bf16(&self) -> u64 {
        TILE_MACS.div_ceil(self.matrix_bf16_macs_per_clk)
    }

    /// Cycles for one tile matmul at the FP32 rate (half the BF16 MACs).
    #[must_use]
    pub fn matmul_cycles_fp32(&self) -> u64 {
        TILE_MACS.div_ceil(self.matrix_bf16_macs_per_clk / 2)
    }

    /// Cycles for one 1024-lane SFPU op.
    #[must_use]
    pub fn sfpu_cycles(&self) -> u64 {
        (TILE_ELEMS as u64).div_ceil(self.vector_fp32_lanes_per_clk)
    }

    /// Derive the cycle/bandwidth cost tables from the pipe throughputs.
    /// For the built-in parts this equals [`CostModel::default`].
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        let sfpu = self.sfpu_cycles();
        CostModel {
            compute: ComputeCosts {
                sfpu_simple: sfpu,
                sfpu_transcendental: 4 * sfpu,
                sfpu_mad: sfpu,
                fpu_matmul: self.matmul_cycles_fp32(),
                fpu_matmul_bf16: self.matmul_cycles_bf16(),
                ..ComputeCosts::default()
            },
            dram: DramCosts {
                bandwidth_bytes_per_s: self.dram_bytes_per_s(),
                ..DramCosts::default()
            },
            ..CostModel::default()
        }
    }

    /// Device configuration for one chip of this part (grid + cost tables;
    /// fault/seed fields at their defaults).
    #[must_use]
    pub fn device_config(&self) -> DeviceConfig {
        DeviceConfig { grid: self.grid, costs: self.cost_model(), ..DeviceConfig::default() }
    }

    /// One-line human summary (grepped by the CI smoke).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "device catalog: {} | {} chip(s) x {} cores @ {:.2} GHz | \
             matrix {} bf16 MACs/clk/core (fp32 half rate) | \
             vector {} fp32 lanes/clk/core | DRAM {} ch, {:.0} GB/s | eth {} links",
            self.name,
            self.chips,
            self.cores_per_chip(),
            self.clock_ghz,
            self.matrix_bf16_macs_per_clk,
            self.vector_fp32_lanes_per_clk,
            self.dram_channels,
            self.dram_bytes_per_s() / 1.0e9,
            self.eth_links
        )
    }

    /// Parse an `--arch` spec: a built-in name (`n150`, `n300`) or a custom
    /// `key=value` list, e.g.
    /// `name=lab1,chips=1,grid=4x4,clock_ghz=0.8,bf16_macs=1024,vector_lanes=32,dram_channels=4,dram_gbps=32,eth_links=8`.
    /// Unspecified custom keys inherit the n300 per-chip values.
    ///
    /// # Errors
    /// A human-readable message for unknown names, malformed pairs or
    /// out-of-range values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(arch) = DeviceCatalog::builtin().get(spec) {
            return Ok(arch.clone());
        }
        if !spec.contains('=') {
            return Err(format!(
                "unknown arch '{spec}'; expected one of [{}] or a key=value spec",
                DeviceCatalog::builtin().names().join(", ")
            ));
        }
        let mut arch = DeviceArch { name: "custom".into(), chips: 1, ..DeviceArch::n300() };
        for pair in spec.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed arch field '{pair}' (expected key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            let int = |v: &str| v.parse::<u64>().map_err(|e| format!("arch field {key}: {e}"));
            let float = |v: &str| v.parse::<f64>().map_err(|e| format!("arch field {key}: {e}"));
            match key {
                "name" => arch.name = value.to_string(),
                "chips" => arch.chips = int(value)? as usize,
                "grid" => {
                    let (x, y) = value
                        .split_once('x')
                        .ok_or_else(|| format!("arch grid '{value}' (expected <x>x<y>)"))?;
                    arch.grid = GridSize {
                        x: x.parse().map_err(|e| format!("arch grid x: {e}"))?,
                        y: y.parse().map_err(|e| format!("arch grid y: {e}"))?,
                    };
                }
                "clock_ghz" => arch.clock_ghz = float(value)?,
                "bf16_macs" => arch.matrix_bf16_macs_per_clk = int(value)?,
                "vector_lanes" => arch.vector_fp32_lanes_per_clk = int(value)?,
                "dram_channels" => arch.dram_channels = int(value)? as usize,
                "dram_gbps" => arch.dram_gbps_per_channel = float(value)?,
                "eth_links" => arch.eth_links = int(value)? as usize,
                other => return Err(format!("unknown arch field '{other}'")),
            }
        }
        if arch.chips == 0
            || arch.grid.num_cores() == 0
            || arch.clock_ghz <= 0.0
            || arch.matrix_bf16_macs_per_clk < 2
            || arch.vector_fp32_lanes_per_clk == 0
            || arch.dram_channels == 0
            || arch.dram_gbps_per_channel <= 0.0
        {
            return Err(format!("arch '{}' has a zero/negative capability", arch.name));
        }
        Ok(arch)
    }
}

/// The set of known parts.
#[derive(Debug, Clone)]
pub struct DeviceCatalog {
    entries: Vec<DeviceArch>,
}

impl DeviceCatalog {
    /// The built-in catalog: n150 and n300.
    #[must_use]
    pub fn builtin() -> Self {
        DeviceCatalog { entries: vec![DeviceArch::n150(), DeviceArch::n300()] }
    }

    /// Look up a part by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&DeviceArch> {
        self.entries.iter().find(|a| a.name == name)
    }

    /// All part names.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|a| a.name.clone()).collect()
    }

    /// All entries.
    #[must_use]
    pub fn entries(&self) -> &[DeviceArch] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_parts_match_calibrated_defaults() {
        // The catalog must not perturb any paper-pinned number: both parts
        // derive exactly the repo's default cost tables.
        for arch in DeviceCatalog::builtin().entries() {
            assert_eq!(arch.cost_model(), CostModel::default(), "{}", arch.name);
        }
        assert_eq!(DeviceArch::n150().total_cores(), 72);
        assert_eq!(DeviceArch::n300().total_cores(), 128);
        assert_eq!(DeviceArch::n300().cores_per_chip(), 64);
        assert_eq!(DeviceArch::n300().device_config().grid, GridSize::WORMHOLE);
    }

    #[test]
    fn pipe_rates_follow_polaris_ratios() {
        let a = DeviceArch::n300();
        assert_eq!(a.matmul_cycles_bf16(), 16, "32768 MACs / 2048 per clk");
        assert_eq!(a.matmul_cycles_fp32(), 32, "fp32 at half rate");
        assert_eq!(a.sfpu_cycles(), 32, "1024 lanes / 32 per clk");
        assert!((a.dram_bytes_per_s() - 288.0e9).abs() < 1.0);
    }

    #[test]
    fn parse_builtin_and_custom() {
        assert_eq!(DeviceArch::parse("n150").unwrap(), DeviceArch::n150());
        let custom = DeviceArch::parse(
            "name=lab1,chips=1,grid=4x4,clock_ghz=0.8,bf16_macs=1024,dram_channels=4",
        )
        .unwrap();
        assert_eq!(custom.name, "lab1");
        assert_eq!(custom.cores_per_chip(), 16);
        assert_eq!(custom.matmul_cycles_bf16(), 32, "half the MAC rate, twice the cycles");
        assert!((custom.dram_bytes_per_s() - 4.0 * 48.0e9).abs() < 1.0);
        assert_eq!(custom.vector_fp32_lanes_per_clk, 32, "unset keys inherit n300");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DeviceArch::parse("p100").unwrap_err().contains("unknown arch"));
        assert!(DeviceArch::parse("name=x,grid=9").is_err());
        assert!(DeviceArch::parse("name=x,teeth=9").unwrap_err().contains("unknown arch field"));
        assert!(DeviceArch::parse("name=x,chips=0").unwrap_err().contains("zero/negative"));
    }

    #[test]
    fn summary_names_the_part_and_pipes() {
        let s = DeviceArch::n150().summary();
        assert!(s.starts_with("device catalog: n150"));
        assert!(s.contains("72 cores"));
        assert!(s.contains("matrix 2048 bf16 MACs/clk"));
    }
}
