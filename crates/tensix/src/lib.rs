//! # tensix — a Tenstorrent Wormhole n300 simulator
//!
//! Functional **and** timing/energy model of the Wormhole accelerator used by
//! the SC'25 paper *"Accelerating Gravitational N-Body Simulations Using the
//! RISC-V-Based Tenstorrent Wormhole"*. The crate provides every hardware
//! feature the paper's port relies on:
//!
//! * 32×32 [`tile::Tile`]s with faces and tilized layout, in FP32 / BF16 /
//!   FP16 / BFP8 [`dtype::DataFormat`]s;
//! * the 8×8 Tensix [`grid`], per-core 1.5 MB [`l1`] SRAM;
//! * software-managed [`cb`] circular buffers with the
//!   `reserve_back` / `push_back` / `wait_front` / `pop_front` semantics;
//! * the [`dst`] register file with its 16-tile (BF16) / 8-tile (FP32)
//!   capacity;
//! * the [`srcreg`] srcA/srcB source registers fed by the unpacker
//!   (including stride-0 lane broadcasts);
//! * [`sfpu`] vector ops (including `rsqrt`) and [`fpu`] tensor ops;
//! * the two-[`noc`] interconnect and banked GDDR6 [`dram`];
//! * [`ethernet`] links for multi-card scaling;
//! * per-kernel [`cost`] accounting, the virtual [`clock`], the Fig.-4
//!   [`power`] model and a [`device`] with seeded reset-failure injection;
//! * a seeded mid-run [`fault`] injector (NoC transients, DRAM ECC, link
//!   flaps, kernel stalls, device loss) for fault-tolerance testing.
//!
//! Higher layers: the `ttmetal` crate builds the TT-Metalium-style
//! programming interface on top of this crate, and `nbody-tt` implements the
//! paper's force/jerk pipeline with it.

#![warn(missing_docs)]

pub mod catalog;
pub mod cb;
pub mod clock;
pub mod cost;
pub mod device;
pub mod dram;
pub mod dst;
pub mod dtype;
pub mod error;
pub mod ethernet;
pub mod fault;
pub mod fpu;
pub mod grid;
pub mod l1;
pub mod noc;
pub mod power;
pub mod sfpu;
pub mod srcreg;
pub mod storm;
pub mod tile;

pub use catalog::{DeviceArch, DeviceCatalog};
pub use cb::{CbStats, CircularBuffer, CircularBufferConfig};
pub use clock::{CycleCounter, DeviceClock, KernelTiming};
pub use cost::{CostModel, CLOCK_HZ};
pub use device::{Device, DeviceConfig, ResetStats, DEFAULT_WATCHDOG};
pub use dram::{BufferId, DramModel, DramStats, DRAM_CAPACITY, DRAM_CHANNELS};
pub use dst::DstRegisters;
pub use dtype::DataFormat;
pub use error::{Result, TensixError};
pub use fault::{
    DramReadFault, FaultClass, FaultConfig, FaultPlan, FaultStats, InterruptKind, KernelInterrupt,
    ScrubConfig,
};
pub use grid::{CoreCoord, CoreRange, CoreRangeSet, GridSize};
pub use noc::{NocId, NocModel};
pub use power::{PowerParams, PowerState, PowerTimeline};
pub use srcreg::{SrcReg, SrcRegisters};
pub use storm::{backend_storm, BackendStorm, StormConfig};
pub use tile::{pack_vector, tilize, unpack_vector, untilize, Tile, TILE_DIM, TILE_ELEMS};
