//! Trace sinks and the per-kernel span emitter.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, RiscRole, TraceEvent, HOST_CORE};

/// Destination for trace events.
///
/// Implementations must be cheap to call from kernel threads: the
/// simulator fetches the sink once per launch and each kernel instance
/// writes through its own [`SpanEmitter`], so a single short lock per
/// event is acceptable, but nothing here may touch the virtual clock.
pub trait TraceSink: Send + Sync {
    /// Whether events are actually collected. Emitters skip work when
    /// this is `false`.
    fn enabled(&self) -> bool;

    /// Record one event.
    fn record(&self, ev: TraceEvent);

    /// Open a new launch epoch and return its id. Event timestamps are
    /// relative to the epoch start.
    fn begin_epoch(&self) -> u32;

    /// Close an epoch, reporting its duration (the slowest kernel
    /// instance) in virtual cycles. Later epochs are rebased after it.
    fn end_epoch(&self, epoch: u32, dur_cycles: u64);

    /// Record a host-side point event (retry decision, teardown, launch
    /// abort). Host events sit between epochs at the current rebase
    /// point.
    fn host_instant(&self, name: &str, args: &[(&str, u64)]);
}

/// Sink that drops everything — the zero-cost-when-off path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _ev: TraceEvent) {}
    fn begin_epoch(&self) -> u32 {
        0
    }
    fn end_epoch(&self, _epoch: u32, _dur_cycles: u64) {}
    fn host_instant(&self, _name: &str, _args: &[(&str, u64)]) {}
}

#[derive(Debug, Default)]
struct MemState {
    events: VecDeque<TraceEvent>,
    /// Duration of each closed epoch, indexed by epoch id.
    epoch_durs: Vec<u64>,
    next_epoch: u32,
    host_seq: u64,
    /// Events evicted by the bounded (ring-buffer) mode.
    dropped: u64,
}

/// In-memory sink collecting events for export.
///
/// By default the sink is unbounded (every event is kept). With
/// [`MemorySink::bounded`] it becomes a drop-oldest ring buffer of the
/// last `capacity` events — the flight-recorder mode: always-on recording
/// whose memory footprint is constant however long the campaign runs, at
/// the cost of forgetting everything but the recent past. Evictions are
/// counted in [`MemorySink::dropped`], never silent.
#[derive(Debug, Default)]
pub struct MemorySink {
    state: Mutex<MemState>,
    /// `None` = unbounded; `Some(k)` = keep only the newest `k` events.
    capacity: Option<usize>,
}

impl MemorySink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// New drop-oldest ring sink keeping at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a ring that can hold nothing records
    /// nothing, which is what [`NullSink`] is for.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded sink needs capacity > 0 (use NullSink to disable)");
        MemorySink { state: Mutex::new(MemState::default()), capacity: Some(capacity) }
    }

    /// Ring capacity (`None` for the unbounded default).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events evicted so far by the bounded mode (0 when unbounded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of epochs opened so far.
    #[must_use]
    pub fn epoch_count(&self) -> u32 {
        self.state.lock().next_epoch
    }

    /// Raw events in arrival order (timestamps still epoch-relative).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.lock().events.iter().cloned().collect()
    }

    /// Export events in deterministic order with absolute timestamps.
    ///
    /// Each epoch is rebased onto the end of the previous one (epochs
    /// run back-to-back on the virtual clock), and events are sorted by
    /// `(epoch, ts, core, role, seq)` so identical runs export identical
    /// traces.
    #[must_use]
    pub fn export(&self) -> Vec<TraceEvent> {
        let st = self.state.lock();
        let mut bases = Vec::with_capacity(st.epoch_durs.len() + 1);
        let mut acc = 0u64;
        for dur in &st.epoch_durs {
            bases.push(acc);
            acc = acc.saturating_add(*dur);
        }
        bases.push(acc); // trailing host events land after the last epoch
        let mut out: Vec<TraceEvent> = st.events.iter().cloned().collect();
        drop(st);
        out.sort_by_key(TraceEvent::sort_key);
        for ev in &mut out {
            let base = bases.get(ev.epoch as usize).copied().unwrap_or(*bases.last().unwrap_or(&0));
            ev.ts = ev.ts.saturating_add(base);
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, ev: TraceEvent) {
        let mut st = self.state.lock();
        if let Some(cap) = self.capacity {
            while st.events.len() >= cap {
                st.events.pop_front();
                st.dropped += 1;
            }
        }
        st.events.push_back(ev);
    }

    fn begin_epoch(&self) -> u32 {
        let mut st = self.state.lock();
        let id = st.next_epoch;
        st.next_epoch += 1;
        st.epoch_durs.push(0);
        id
    }

    fn end_epoch(&self, epoch: u32, dur_cycles: u64) {
        let mut st = self.state.lock();
        if let Some(slot) = st.epoch_durs.get_mut(epoch as usize) {
            *slot = dur_cycles;
        }
    }

    fn host_instant(&self, name: &str, args: &[(&str, u64)]) {
        let (epoch, seq) = {
            let mut st = self.state.lock();
            let seq = st.host_seq;
            st.host_seq += 1;
            (st.next_epoch, seq)
        };
        self.record(TraceEvent {
            epoch,
            ts: 0,
            core: HOST_CORE,
            role: RiscRole::Host,
            seq,
            name: name.to_string(),
            kind: EventKind::Instant,
            args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        });
    }
}

/// Per-kernel-instance event writer.
///
/// One emitter per `(core, role)` track; it owns the track's sequence
/// counter and an open-span stack so aborted kernels can close whatever
/// spans they left open ([`SpanEmitter::close_all`]) and traces stay
/// well-nested even on faulty runs.
pub struct SpanEmitter {
    sink: Arc<dyn TraceSink>,
    epoch: u32,
    core: u32,
    role: RiscRole,
    seq: u64,
    open: Vec<String>,
}

impl std::fmt::Debug for SpanEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanEmitter")
            .field("epoch", &self.epoch)
            .field("core", &self.core)
            .field("role", &self.role)
            .field("seq", &self.seq)
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl SpanEmitter {
    /// New emitter for one `(core, role)` track within `epoch`.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>, epoch: u32, core: u32, role: RiscRole) -> Self {
        Self { sink, epoch, core, role, seq: 0, open: Vec::new() }
    }

    fn push(&mut self, ts: u64, name: &str, kind: EventKind, args: &[(&str, u64)]) {
        let seq = self.seq;
        self.seq += 1;
        self.sink.record(TraceEvent {
            epoch: self.epoch,
            ts,
            core: self.core,
            role: self.role,
            seq,
            name: name.to_string(),
            kind,
            args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        });
    }

    /// Open a span at virtual time `ts`.
    pub fn span_begin(&mut self, name: &str, ts: u64) {
        self.open.push(name.to_string());
        self.push(ts, name, EventKind::SpanBegin, &[]);
    }

    /// Close the innermost open span, which must be named `name`.
    pub fn span_end(&mut self, name: &str, ts: u64) {
        debug_assert_eq!(self.open.last().map(String::as_str), Some(name));
        self.open.pop();
        self.push(ts, name, EventKind::SpanEnd, &[]);
    }

    /// Close every open span at `ts` (innermost first). Used when a
    /// kernel aborts mid-span so the trace stays well-nested.
    pub fn close_all(&mut self, ts: u64) {
        while let Some(name) = self.open.pop() {
            self.push(ts, &name, EventKind::SpanEnd, &[]);
        }
    }

    /// Record a point event.
    pub fn instant(&mut self, name: &str, ts: u64, args: &[(&str, u64)]) {
        self.push(ts, name, EventKind::Instant, args);
    }

    /// Record a self-contained interval `[ts, ts + dur)`.
    pub fn complete(&mut self, name: &str, ts: u64, dur: u64, args: &[(&str, u64)]) {
        self.push(ts, name, EventKind::Complete { dur }, args);
    }

    /// Record a counter sample.
    pub fn counter(&mut self, name: &str, ts: u64, value: u64) {
        self.push(ts, name, EventKind::Counter { value }, &[]);
    }

    /// Number of spans currently open.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::check_nesting;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent {
            epoch: 0,
            ts: 0,
            core: 0,
            role: RiscRole::Trisc,
            seq: 0,
            name: "x".into(),
            kind: EventKind::Instant,
            args: Vec::new(),
        });
        assert_eq!(sink.begin_epoch(), 0);
    }

    #[test]
    fn epochs_rebase_back_to_back() {
        let sink = Arc::new(MemorySink::new());
        let e0 = sink.begin_epoch();
        let mut em = SpanEmitter::new(sink.clone(), e0, 0, RiscRole::Trisc);
        em.span_begin("k", 0);
        em.span_end("k", 100);
        sink.end_epoch(e0, 100);

        let e1 = sink.begin_epoch();
        let mut em = SpanEmitter::new(sink.clone(), e1, 0, RiscRole::Trisc);
        em.span_begin("k", 0);
        em.span_end("k", 50);
        sink.end_epoch(e1, 50);

        let out = sink.export();
        let ts: Vec<u64> = out.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 100, 100, 150]);
        check_nesting(&out).unwrap();
    }

    #[test]
    fn host_instants_land_between_epochs() {
        let sink = Arc::new(MemorySink::new());
        let e0 = sink.begin_epoch();
        sink.end_epoch(e0, 40);
        sink.host_instant("retry", &[("attempt", 1)]);
        let out = sink.export();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, 40);
        assert_eq!(out[0].core, HOST_CORE);
        assert_eq!(out[0].args, vec![("attempt".to_string(), 1)]);
    }

    #[test]
    fn close_all_closes_in_reverse_order() {
        let sink = Arc::new(MemorySink::new());
        let e = sink.begin_epoch();
        let mut em = SpanEmitter::new(sink.clone(), e, 2, RiscRole::Brisc);
        em.span_begin("kernel", 0);
        em.span_begin("tile", 3);
        assert_eq!(em.open_depth(), 2);
        em.close_all(7);
        assert_eq!(em.open_depth(), 0);
        sink.end_epoch(e, 7);
        check_nesting(&sink.export()).unwrap();
    }

    #[test]
    fn bounded_sink_drops_oldest_and_counts() {
        let sink = MemorySink::bounded(3);
        assert_eq!(sink.capacity(), Some(3));
        for i in 0..5u64 {
            sink.host_instant("ev", &[("i", i)]);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        // The survivors are the *newest* three, in arrival order.
        let kept: Vec<u64> = sink.events().iter().map(|e| e.args[0].1).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        // Unbounded default keeps everything.
        let full = MemorySink::new();
        for i in 0..5u64 {
            full.host_instant("ev", &[("i", i)]);
        }
        assert_eq!(full.len(), 5);
        assert_eq!(full.dropped(), 0);
        assert_eq!(full.capacity(), None);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_ring_is_rejected() {
        let _ = MemorySink::bounded(0);
    }

    #[test]
    fn export_order_is_deterministic_across_interleavings() {
        // Two cores writing at the same timestamps: order must come out
        // sorted by core then seq regardless of arrival order.
        let sink = Arc::new(MemorySink::new());
        let e = sink.begin_epoch();
        let mut a = SpanEmitter::new(sink.clone(), e, 1, RiscRole::Trisc);
        let mut b = SpanEmitter::new(sink.clone(), e, 0, RiscRole::Trisc);
        a.instant("x", 5, &[]);
        b.instant("x", 5, &[]);
        sink.end_epoch(e, 5);
        let out = sink.export();
        assert_eq!(out[0].core, 0);
        assert_eq!(out[1].core, 1);
    }
}
