//! Experiment E4 — the §3 correctness methodology: force and jerk from the
//! Wormhole pipeline vs the FP64 golden reference, across workloads, with
//! the paper's tolerances (acc within 0.05 %, jerk within 0.2 % of a typical
//! force magnitude).

use std::fs;
use std::path::Path;

use nbody::accuracy::compare_forces;
use nbody::force::ForceKernel;
use nbody::ic::{plummer, PlummerConfig};
use nbody::ReferenceKernel;
use nbody_tt::validate::{format_table, validation_suite};
use nbody_tt::DeviceForcePipeline;
use tensix::{DataFormat, Device, DeviceConfig};

fn main() {
    if tt_harness::maybe_run_profile() {
        return;
    }
    println!("=== E4: device-vs-golden accuracy (paper §3) ===\n");
    let device = Device::new(0, DeviceConfig::default());
    // Full functional execution; 2048-particle Plummer is the largest row.
    let rows = validation_suite(&device, 2048).expect("validation suite");
    let table = format_table(&rows);
    println!("{table}");
    let all_pass = rows.iter().all(nbody_tt::ValidationRow::passes);
    println!(
        "paper claim: all components within tolerance -> {}",
        if all_pass { "REPRODUCED" } else { "NOT reproduced" }
    );
    fs::create_dir_all("results").ok();
    fs::write(Path::new("results/accuracy_table.txt"), table).ok();
    println!("table written to results/accuracy_table.txt");
    assert!(all_pass, "accuracy table must pass");

    // Precision ablation: why the paper computes in FP32.
    println!("\n--- storage-format ablation (N = 512 Plummer) ---");
    let sys = plummer(PlummerConfig { n: 512, seed: 40, ..PlummerConfig::default() });
    let golden = ReferenceKernel::new(0.01).compute(&sys);
    for (label, format) in [
        ("FP32 (paper)", DataFormat::Float32),
        ("BF16", DataFormat::Float16b),
        ("FP16", DataFormat::Float16),
    ] {
        let p = DeviceForcePipeline::new_with_format(
            Device::new(0, DeviceConfig::default()),
            512,
            0.01,
            1,
            format,
        )
        .expect("pipeline");
        let cmp = compare_forces(&golden, &p.evaluate(&sys).expect("eval"));
        println!(
            "{label:<13} max acc err {:.3e} | max jerk err {:.3e} | {}",
            cmp.max_acc_error,
            cmp.max_jerk_error,
            if cmp.passes() { "PASS" } else { "FAIL (motivates FP32)" }
        );
    }
}
