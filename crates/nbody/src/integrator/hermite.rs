//! 4th-order Hermite predictor–corrector.
//!
//! The scheme of Makino & Aarseth used by production direct N-body codes:
//!
//! predictor:  xₚ = x + v dt + a dt²/2 + ȧ dt³/6
//!             vₚ = v + a dt + ȧ dt²/2
//! evaluate:   (a₁, ȧ₁) at the predicted state           ← offloaded part
//! corrector:  v₁ = v + (a + a₁) dt/2 + (ȧ − ȧ₁) dt²/12
//!             x₁ = x + (v + v₁) dt/2 + (a − a₁) dt²/12
//!
//! One force evaluation per step; 4th-order accurate thanks to the jerk.
//! Prediction and correction run in FP64 on the host — the mixed-precision
//! split of the paper.

use crate::force::ForceKernel;
use crate::integrator::Integrator;
use crate::particle::ParticleSystem;

/// 4th-order Hermite integrator over any force kernel.
#[derive(Debug, Clone, Copy)]
pub struct Hermite4<K> {
    kernel: K,
}

impl<K: ForceKernel> Hermite4<K> {
    /// Integrator using `kernel` for force evaluations.
    #[must_use]
    pub fn new(kernel: K) -> Self {
        Hermite4 { kernel }
    }

    /// The underlying force kernel.
    #[must_use]
    pub fn kernel(&self) -> &K {
        &self.kernel
    }
}

impl<K: ForceKernel> Integrator for Hermite4<K> {
    fn name(&self) -> &'static str {
        "hermite4"
    }

    fn initialize(&self, system: &mut ParticleSystem) {
        let f = self.kernel.compute(system);
        system.set_forces(f.acc, f.jerk);
    }

    fn step(&self, system: &mut ParticleSystem, dt: f64) {
        let n = system.len();
        let dt2 = dt * dt / 2.0;
        let dt3 = dt * dt * dt / 6.0;

        // Save the t₀ state.
        let pos0 = system.pos.clone();
        let vel0 = system.vel.clone();
        let acc0 = system.acc.clone();
        let jerk0 = system.jerk.clone();

        // Predict in place (the kernel evaluates the predicted state).
        for i in 0..n {
            for k in 0..3 {
                system.pos[i][k] =
                    pos0[i][k] + vel0[i][k] * dt + acc0[i][k] * dt2 + jerk0[i][k] * dt3;
                system.vel[i][k] = vel0[i][k] + acc0[i][k] * dt + jerk0[i][k] * dt * dt / 2.0;
            }
        }

        let f1 = self.kernel.compute(system);

        // Correct.
        let half = dt / 2.0;
        let twelfth = dt * dt / 12.0;
        for i in 0..n {
            for k in 0..3 {
                let v1 = vel0[i][k]
                    + (acc0[i][k] + f1.acc[i][k]) * half
                    + (jerk0[i][k] - f1.jerk[i][k]) * twelfth;
                let x1 =
                    pos0[i][k] + (vel0[i][k] + v1) * half + (acc0[i][k] - f1.acc[i][k]) * twelfth;
                system.vel[i][k] = v1;
                system.pos[i][k] = x1;
            }
        }
        system.set_forces(f1.acc, f1.jerk);
        system.time += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{angular_momentum, relative_energy_error, total_energy};
    use crate::force::ReferenceKernel;
    use crate::ic::{plummer, PlummerConfig};
    use crate::integrator::circular_binary;

    #[test]
    fn circular_orbit_stays_circular() {
        let mut s = circular_binary(1.0);
        let integ = Hermite4::new(ReferenceKernel::new(0.0));
        let period = std::f64::consts::TAU; // 2π √(r³/GM), r = GM = 1
        integ.evolve(&mut s, period, period / 256.0);
        // After one period the separation is still ~1 and positions return.
        let d = [s.pos[0][0] - s.pos[1][0], s.pos[0][1] - s.pos[1][1], s.pos[0][2] - s.pos[1][2]];
        let sep = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((sep - 1.0).abs() < 1e-6, "separation drifted to {sep}");
        assert!((s.pos[0][0] - 0.5).abs() < 1e-3, "did not return after a period");
    }

    #[test]
    fn energy_error_scales_as_dt4() {
        let err_at = |steps: usize| {
            let mut s = circular_binary(1.0);
            let integ = Hermite4::new(ReferenceKernel::new(0.0));
            let e0 = total_energy(&s, 0.0);
            integ.evolve(&mut s, 1.0, 1.0 / steps as f64);
            relative_energy_error(total_energy(&s, 0.0), e0)
        };
        let coarse = err_at(32);
        let fine = err_at(64);
        let order = (coarse / fine).log2();
        assert!(
            (3.3..5.0).contains(&order),
            "convergence order {order} (coarse {coarse:.3e}, fine {fine:.3e})"
        );
    }

    #[test]
    fn cluster_energy_conserved() {
        let mut s = plummer(PlummerConfig { n: 64, seed: 50, ..PlummerConfig::default() });
        let eps = 0.05;
        let integ = Hermite4::new(ReferenceKernel::new(eps));
        let e0 = total_energy(&s, eps);
        integ.evolve(&mut s, 0.5, 1.0 / 512.0);
        let err = relative_energy_error(total_energy(&s, eps), e0);
        // A 64-body softened cluster over half a time unit: the 4th-order
        // scheme holds energy to ~1e-6 at this step size.
        assert!(err < 1e-5, "energy error {err}");
    }

    #[test]
    fn angular_momentum_conserved() {
        let mut s = plummer(PlummerConfig { n: 32, seed: 51, ..PlummerConfig::default() });
        let integ = Hermite4::new(ReferenceKernel::new(0.01));
        let l0 = angular_momentum(&s);
        integ.evolve(&mut s, 0.25, 1.0 / 256.0);
        let l1 = angular_momentum(&s);
        for k in 0..3 {
            // Hermite is not symplectic; per-component drift at this step
            // size sits near 1e-6.
            assert!((l1[k] - l0[k]).abs() < 1e-5, "L[{k}] drifted {} -> {}", l0[k], l1[k]);
        }
    }

    #[test]
    fn time_advances() {
        let mut s = circular_binary(1.0);
        let integ = Hermite4::new(ReferenceKernel::new(0.0));
        integ.initialize(&mut s);
        integ.step(&mut s, 0.125);
        assert!((s.time - 0.125).abs() < 1e-15);
    }
}
