//! Fig. 2 data organization: particles → tiles.
//!
//! Two tile views of the particle data feed the device pipeline:
//!
//! * **target tiles** — each per-axis quantity packed 1024 particles per
//!   tile ("the column tiles ... distributed across Tensix cores");
//! * **source broadcast tiles** — "we create copies of the data, organized
//!   into N tiles, where each tile holds 1024 elements": tile `j` holds
//!   particle `j`'s value in all 1024 lanes, so one element-wise tile op
//!   evaluates particle `j` against 1024 targets at once.
//!
//! Padding: the tail of the last target tile is filled with zero-mass
//! particles parked at a remote position, so they neither contribute force
//! (mass 0) nor produce NaNs (nonzero distance to every real particle).

use nbody::particle::ParticleSystem;
use tensix::tile::{pack_vector, Tile, TILE_DIM, TILE_ELEMS};
use tensix::DataFormat;

/// Position far from any sane cluster coordinate, used for padding lanes.
pub const PAD_POSITION: f32 = 1.0e6;

/// Particles per matrix-kernel block: one 32×32 tile covers a
/// 32-target × 32-source block pair, so blocks are [`TILE_DIM`] particles.
pub const MATRIX_BLOCK: usize = TILE_DIM;

/// Upper bound on the source-chunk count of the matrix kernel: the device
/// flushes its FP32 accumulator tiles to DRAM once per chunk so the host
/// can finish the reduction in compensated FP64, and eight chunks bound
/// both the flush traffic and the f32 accumulation depth.
pub const MATRIX_MAX_CHUNKS: usize = 8;

/// Per-axis particle quantities in FP32, the host-side staging format.
#[derive(Debug, Clone)]
pub struct HostArrays {
    /// Particle count (unpadded).
    pub n: usize,
    /// Masses.
    pub mass: Vec<f32>,
    /// Position components.
    pub pos: [Vec<f32>; 3],
    /// Velocity components.
    pub vel: [Vec<f32>; 3],
}

impl HostArrays {
    /// Convert the FP64 master state to FP32 arrays (the host side of the
    /// mixed-precision split).
    #[must_use]
    pub fn from_system(system: &ParticleSystem) -> Self {
        let n = system.len();
        let comp = |axis: usize, src: &[[f64; 3]]| -> Vec<f32> {
            src.iter().map(|v| v[axis] as f32).collect()
        };
        HostArrays {
            n,
            mass: system.mass.iter().map(|m| *m as f32).collect(),
            pos: [comp(0, &system.pos), comp(1, &system.pos), comp(2, &system.pos)],
            vel: [comp(0, &system.vel), comp(1, &system.vel), comp(2, &system.vel)],
        }
    }

    /// Number of target tiles: ⌈n / 1024⌉.
    #[must_use]
    pub fn num_target_tiles(&self) -> usize {
        self.n.div_ceil(TILE_ELEMS)
    }
}

/// The seven tiled quantities shipped to DRAM, in both views.
#[derive(Debug)]
pub struct TiledParticles {
    /// Particle count (unpadded).
    pub n: usize,
    /// Packed target tiles, one vec of ⌈n/1024⌉ tiles per quantity:
    /// `[x, y, z, vx, vy, vz]`.
    pub targets: [Vec<Tile>; 6],
    /// Source broadcast tiles, one vec of `n` tiles per quantity:
    /// `[m, x, y, z, vx, vy, vz]`.
    pub sources: [Vec<Tile>; 7],
}

/// Build one broadcast tile per value: tile `j` = `splat(values[j])`.
#[must_use]
pub fn broadcast_tiles(format: DataFormat, values: &[f32]) -> Vec<Tile> {
    values.iter().map(|v| Tile::splat(format, *v)).collect()
}

/// Pack the six target-quantity tile views of `arrays`: per-axis positions
/// padded at [`PAD_POSITION`], velocities zero-padded. Shared by the full-N
/// tilize and the active-subset gather path.
#[must_use]
pub fn tilize_targets(arrays: &HostArrays) -> [Vec<Tile>; 6] {
    let f = DataFormat::Float32;
    [
        pack_vector(f, &arrays.pos[0], PAD_POSITION),
        pack_vector(f, &arrays.pos[1], PAD_POSITION),
        pack_vector(f, &arrays.pos[2], PAD_POSITION),
        pack_vector(f, &arrays.vel[0], 0.0),
        pack_vector(f, &arrays.vel[1], 0.0),
        pack_vector(f, &arrays.vel[2], 0.0),
    ]
}

/// Gather the `active` targets of `arrays` into a dense prefix — the host
/// side of dynamic tile packing. The result has `n = active.len()`; tilized
/// (via [`tilize_targets`]), its pad lanes park at [`PAD_POSITION`] with
/// zero velocity exactly like a full-N tail tile, so an active-set launch
/// rounds up to whole tiles without contributing spurious forces.
///
/// # Panics
/// Panics if an index is out of range.
#[must_use]
pub fn gather_active_targets(arrays: &HostArrays, active: &[usize]) -> HostArrays {
    let pick = |src: &Vec<f32>| -> Vec<f32> { active.iter().map(|&i| src[i]).collect() };
    HostArrays {
        n: active.len(),
        mass: pick(&arrays.mass),
        pos: [pick(&arrays.pos[0]), pick(&arrays.pos[1]), pick(&arrays.pos[2])],
        vel: [pick(&arrays.vel[0]), pick(&arrays.vel[1]), pick(&arrays.vel[2])],
    }
}

/// Tilize the host arrays into both views (FP32 tiles — "the Tenstorrent
/// Wormhole accelerator supports up to FP32").
#[must_use]
pub fn tilize_particles(arrays: &HostArrays) -> TiledParticles {
    let f = DataFormat::Float32;
    let targets = tilize_targets(arrays);
    let sources = [
        broadcast_tiles(f, &arrays.mass),
        broadcast_tiles(f, &arrays.pos[0]),
        broadcast_tiles(f, &arrays.pos[1]),
        broadcast_tiles(f, &arrays.pos[2]),
        broadcast_tiles(f, &arrays.vel[0]),
        broadcast_tiles(f, &arrays.vel[1]),
        broadcast_tiles(f, &arrays.vel[2]),
    ];
    TiledParticles { n: arrays.n, targets, sources }
}

/// Unpack per-axis result tiles (acceleration or jerk components) back to
/// `n` FP32 values per axis.
#[must_use]
pub fn untile_results(tiles: &[Vec<Tile>; 3], n: usize) -> [Vec<f32>; 3] {
    [
        tensix::tile::unpack_vector(&tiles[0], n),
        tensix::tile::unpack_vector(&tiles[1], n),
        tensix::tile::unpack_vector(&tiles[2], n),
    ]
}

/// CB page indices of the matrix-kernel operand groups (within one waited
/// group, in the order the reader pushes them).
pub mod matrix_pages {
    /// IN0 page 0: `A_POS[i][k] = r_i[k]` (k < 3), the target-position
    /// operand of the cross matmuls.
    pub const A_POS: usize = 0;
    /// IN0 page 1: `A_VEL[i][k] = v_i[k]`.
    pub const A_VEL: usize = 1;
    /// IN0 page 2: column 0 holds `|r_i|²` per target row.
    pub const COL_R2: usize = 2;
    /// IN0 page 3: column 0 holds `r_i·v_i` per target row.
    pub const COL_RV: usize = 3;
    /// IN1 page 0: `B_POST[k][j] = r_j[k]` — source positions transposed so
    /// `A_POS × B_POST` lands `r_i·r_j` at (i, j).
    pub const B_POST: usize = 0;
    /// IN1 page 1: `B_VELT[k][j] = v_j[k]`.
    pub const B_VELT: usize = 1;
    /// IN1 page 2: row 0 holds `m_j` per source column.
    pub const ROW_M: usize = 2;
    /// IN1 page 3: row 0 holds `|r_j|² + ε²` per source column (the
    /// softening enters the pair distance exactly once, here).
    pub const ROW_R2EPS: usize = 3;
    /// IN1 page 4: row 0 holds `r_j·v_j` per source column.
    pub const ROW_RV: usize = 4;
    /// Columns of the SRC_ATTR tiles (IN2's pages, BF16):
    /// `[x_j, y_j, z_j, vx_j, vy_j, vz_j, 1]`, so the accumulate matmuls
    /// `W × SRC_ATTR` and `G × SRC_ATTR` produce all seven moment sums per
    /// target row at once.
    pub const ATTR_COLS: usize = 7;
    /// `sources` index of the high SRC_ATTR page: `bf16(attr)`.
    pub const SRC_ATTR_HI: usize = 5;
    /// `sources` index of the low SRC_ATTR page: `bf16(attr − bf16(attr))`
    /// — the BF16 residual, so the hi+lo accumulate-matmul pair recovers
    /// ~16 mantissa bits of the source coordinates at full BF16 MAC rate.
    /// (The mass column's 1.0 is exact in BF16; its residual is 0.)
    pub const SRC_ATTR_LO: usize = 6;
}

/// Distance-squared damping added to the *diagonal* lanes of diagonal block
/// pairs: `s²_ii ← s²_ii + DIAG_DAMP` collapses the softened self-weight
/// `W_ii = m_i/ε³` (easily ~10⁴·m) to ~`m·10⁻¹²`, so no huge self-term ever
/// enters the FP32 moment accumulation — without it, that term's rounding
/// alone sinks the force accuracy. Large enough to dwarf any real `|r|²`,
/// small enough that `s² + DIAG_DAMP` stays far from FP32 overflow.
pub const DIAG_DAMP: f32 = 1.0e8;

/// The damping operand: [`DIAG_DAMP`] on the diagonal, zero elsewhere. One
/// FP32 page, read once per launch and held in its CB.
#[must_use]
pub fn diag_damp_tile() -> Tile {
    let mut t = Tile::zeros(DataFormat::Float32);
    for i in 0..TILE_DIM {
        t.set(i, i, DIAG_DAMP);
    }
    t
}

/// Split `x` into its BF16 value and the BF16-rounded residual:
/// `(hi, lo) = (bf16(x), bf16(x − hi))`, with `x ≈ hi + lo` to ~16 mantissa
/// bits. The host combine subtracts target coordinates through this same
/// split so the device and host agree bit-for-bit on what was accumulated.
#[must_use]
pub fn bf16_split(x: f32) -> (f32, f32) {
    let bf16 = DataFormat::Float16b;
    let hi = bf16.quantize(x);
    let lo = bf16.quantize(x - hi);
    (hi, lo)
}

/// Matrix-kernel operand tiles, one tile per 32-particle block in each view.
#[derive(Debug)]
pub struct MatrixOperands {
    /// Number of 32-particle blocks: ⌈n / 32⌉.
    pub num_blocks: usize,
    /// Target-side operands `[A_POS, A_VEL, COL_R2, COL_RV]` (FP32).
    pub targets: [Vec<Tile>; 4],
    /// Source-side operands
    /// `[B_POST, B_VELT, ROW_M, ROW_R2EPS, ROW_RV, SRC_ATTR_HI, SRC_ATTR_LO]`
    /// (FP32 in DRAM; the two SRC_ATTR pages hold BF16-representable values
    /// and pass through their BF16 CB unchanged).
    pub sources: [Vec<Tile>; 7],
}

/// Number of 32-particle blocks for `n` particles.
#[must_use]
pub fn num_matrix_blocks(n: usize) -> usize {
    n.div_ceil(MATRIX_BLOCK)
}

/// Source-chunk ranges `(start_block, block_count)` of the matrix kernel:
/// the `num_src_blocks` source blocks split over `min(8, num_src_blocks)`
/// chunks. The device flushes its accumulators per chunk and the host
/// combine sums the per-chunk partials — both sides call this function, so
/// the split is the single source of truth.
#[must_use]
pub fn matrix_chunks(num_src_blocks: usize) -> Vec<(usize, usize)> {
    assert!(num_src_blocks > 0, "empty system");
    split_tiles_to_cores(num_src_blocks, num_src_blocks.min(MATRIX_MAX_CHUNKS))
}

/// Build the matrix-kernel operand tiles from the host arrays.
///
/// Padding: target pad lanes park at [`PAD_POSITION`] (their rows of the
/// output are discarded), source pad lanes carry zero mass — `W = m/s³ = 0`
/// kills the whole column — with `ROW_R2EPS = ε²` keeping `s²` positive
/// even against a target at the origin.
#[must_use]
pub fn matrix_operands(arrays: &HostArrays, eps_squared: f32) -> MatrixOperands {
    let f = DataFormat::Float32;
    let nb = num_matrix_blocks(arrays.n);
    let mut targets: [Vec<Tile>; 4] = std::array::from_fn(|_| vec![Tile::zeros(f); nb]);
    let mut sources: [Vec<Tile>; 7] = std::array::from_fn(|_| vec![Tile::zeros(f); nb]);
    for b in 0..nb {
        for lane in 0..MATRIX_BLOCK {
            let i = b * MATRIX_BLOCK + lane;
            let (r, v, m) = if i < arrays.n {
                (
                    [arrays.pos[0][i], arrays.pos[1][i], arrays.pos[2][i]],
                    [arrays.vel[0][i], arrays.vel[1][i], arrays.vel[2][i]],
                    arrays.mass[i],
                )
            } else {
                ([PAD_POSITION; 3], [0.0; 3], 0.0)
            };
            let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
            let rv = r[0] * v[0] + r[1] * v[1] + r[2] * v[2];
            for k in 0..3 {
                targets[matrix_pages::A_POS][b].set(lane, k, r[k]);
                targets[matrix_pages::A_VEL][b].set(lane, k, v[k]);
            }
            targets[matrix_pages::COL_R2][b].set(lane, 0, r2);
            targets[matrix_pages::COL_RV][b].set(lane, 0, rv);
            if i < arrays.n {
                for k in 0..3 {
                    sources[matrix_pages::B_POST][b].set(k, lane, r[k]);
                    sources[matrix_pages::B_VELT][b].set(k, lane, v[k]);
                    let (rh, rl) = bf16_split(r[k]);
                    let (vh, vl) = bf16_split(v[k]);
                    sources[matrix_pages::SRC_ATTR_HI][b].set(lane, k, rh);
                    sources[matrix_pages::SRC_ATTR_HI][b].set(lane, 3 + k, vh);
                    sources[matrix_pages::SRC_ATTR_LO][b].set(lane, k, rl);
                    sources[matrix_pages::SRC_ATTR_LO][b].set(lane, 3 + k, vl);
                }
                sources[matrix_pages::ROW_M][b].set(0, lane, m);
                sources[matrix_pages::ROW_R2EPS][b].set(0, lane, r2 + eps_squared);
                sources[matrix_pages::ROW_RV][b].set(0, lane, rv);
                sources[matrix_pages::SRC_ATTR_HI][b].set(lane, 6, 1.0);
            } else {
                sources[matrix_pages::ROW_R2EPS][b].set(0, lane, eps_squared);
            }
        }
    }
    MatrixOperands { num_blocks: nb, targets, sources }
}

/// Split `num_tiles` target tiles across `num_cores` cores as evenly as
/// possible: returns `(start_tile, count)` per core, front-loaded like
/// TT-Metalium's `split_work_to_cores`.
#[must_use]
pub fn split_tiles_to_cores(num_tiles: usize, num_cores: usize) -> Vec<(usize, usize)> {
    assert!(num_cores > 0, "need at least one core");
    let base = num_tiles / num_cores;
    let extra = num_tiles % num_cores;
    let mut out = Vec::with_capacity(num_cores);
    let mut start = 0;
    for c in 0..num_cores {
        let count = base + usize::from(c < extra);
        out.push((start, count));
        start += count;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::ic::{plummer, PlummerConfig};

    fn sys(n: usize) -> ParticleSystem {
        plummer(PlummerConfig { n, seed: 80, ..PlummerConfig::default() })
    }

    #[test]
    fn host_arrays_mirror_system() {
        let s = sys(100);
        let h = HostArrays::from_system(&s);
        assert_eq!(h.n, 100);
        assert_eq!(h.mass.len(), 100);
        assert_eq!(h.pos[2][7], s.pos[7][2] as f32);
        assert_eq!(h.vel[0][99], s.vel[99][0] as f32);
        assert_eq!(h.num_target_tiles(), 1);
    }

    #[test]
    fn target_tiles_are_padded() {
        let s = sys(100);
        let t = tilize_particles(&HostArrays::from_system(&s));
        assert_eq!(t.targets[0].len(), 1);
        // Lane 100 onward is the parking position.
        assert_eq!(t.targets[0][0].as_slice()[100], PAD_POSITION);
        assert_eq!(t.targets[3][0].as_slice()[100], 0.0);
        // Real lanes hold the particle data.
        assert_eq!(t.targets[1][0].as_slice()[5], s.pos[5][1] as f32);
    }

    #[test]
    fn source_tiles_broadcast_each_particle() {
        let s = sys(70);
        let t = tilize_particles(&HostArrays::from_system(&s));
        assert_eq!(t.sources[0].len(), 70, "one broadcast tile per particle");
        let j = 42;
        let tile = &t.sources[1][j];
        let expected = s.pos[j][0] as f32;
        assert!(tile.as_slice().iter().all(|v| *v == expected));
        // Mass tile broadcasts the mass.
        assert!(t.sources[0][j].as_slice().iter().all(|v| *v == s.mass[j] as f32));
    }

    #[test]
    fn multi_tile_targets() {
        let s = sys(2048 + 10);
        let t = tilize_particles(&HostArrays::from_system(&s));
        assert_eq!(t.targets[0].len(), 3);
        assert_eq!(t.sources[0].len(), 2058);
    }

    #[test]
    fn untile_roundtrip() {
        let s = sys(1500);
        let h = HostArrays::from_system(&s);
        let t = tilize_particles(&h);
        let back = untile_results(
            &[t.targets[0].clone(), t.targets[1].clone(), t.targets[2].clone()],
            1500,
        );
        assert_eq!(back[0], h.pos[0]);
        assert_eq!(back[2], h.pos[2]);
    }

    #[test]
    fn work_split_even_and_frontloaded() {
        assert_eq!(split_tiles_to_cores(8, 4), vec![(0, 2), (2, 2), (4, 2), (6, 2)]);
        assert_eq!(split_tiles_to_cores(5, 3), vec![(0, 2), (2, 2), (4, 1)]);
        assert_eq!(split_tiles_to_cores(2, 4), vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
        let split = split_tiles_to_cores(100, 64);
        assert_eq!(split.iter().map(|(_, c)| c).sum::<usize>(), 100);
        assert_eq!(split[0].1, 2);
        assert_eq!(split[63].1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = split_tiles_to_cores(4, 0);
    }

    #[test]
    fn matrix_operands_shape_and_padding() {
        let s = sys(70); // 3 blocks, last padded from lane 6
        let h = HostArrays::from_system(&s);
        let ops = matrix_operands(&h, 1e-4);
        assert_eq!(ops.num_blocks, 3);
        assert_eq!(ops.targets[0].len(), 3);
        assert_eq!(ops.sources[0].len(), 3);

        // Real lanes: A_POS row i holds r_i, B_POST column j holds r_j.
        let (b, lane, i) = (1, 9, 41);
        for k in 0..3 {
            assert_eq!(ops.targets[matrix_pages::A_POS][b].get(lane, k), s.pos[i][k] as f32);
            assert_eq!(ops.sources[matrix_pages::B_POST][b].get(k, lane), s.pos[i][k] as f32);
            // SRC_ATTR is split hi/lo so the bf16 matmul path keeps ~16
            // mantissa bits: hi is the bf16 quantization, lo the residual.
            let (rh, rl) = bf16_split(s.pos[i][k] as f32);
            let (vh, vl) = bf16_split(s.vel[i][k] as f32);
            let hi = &ops.sources[matrix_pages::SRC_ATTR_HI][b];
            let lo = &ops.sources[matrix_pages::SRC_ATTR_LO][b];
            assert_eq!((hi.get(lane, k), lo.get(lane, k)), (rh, rl));
            assert_eq!((hi.get(lane, 3 + k), lo.get(lane, 3 + k)), (vh, vl));
        }
        assert_eq!(ops.sources[matrix_pages::SRC_ATTR_HI][b].get(lane, 6), 1.0);
        assert_eq!(ops.sources[matrix_pages::SRC_ATTR_LO][b].get(lane, 6), 0.0);
        let r2 = ops.targets[matrix_pages::COL_R2][b].get(lane, 0);
        assert!((f64::from(r2) - s.pos[i].iter().map(|x| x * x).sum::<f64>()).abs() < 1e-5);
        assert_eq!(ops.sources[matrix_pages::ROW_R2EPS][b].get(0, lane), r2 + 1e-4);

        // Pad lanes: parked targets, zero-mass sources, ε² keeps s² positive.
        let pad = 20; // particle 84 ≥ 70
        assert_eq!(ops.targets[matrix_pages::A_POS][2].get(pad, 0), PAD_POSITION);
        assert_eq!(ops.sources[matrix_pages::ROW_M][2].get(0, pad), 0.0);
        assert_eq!(ops.sources[matrix_pages::ROW_R2EPS][2].get(0, pad), 1e-4);
        assert_eq!(ops.sources[matrix_pages::SRC_ATTR_HI][2].get(pad, 6), 0.0);
    }

    #[test]
    fn matrix_chunks_cover_all_blocks() {
        assert_eq!(matrix_chunks(1), vec![(0, 1)]);
        assert_eq!(matrix_chunks(3).len(), 3);
        let chunks = matrix_chunks(100);
        assert_eq!(chunks.len(), MATRIX_MAX_CHUNKS);
        assert_eq!(chunks.iter().map(|(_, c)| c).sum::<usize>(), 100);
        assert_eq!(num_matrix_blocks(70), 3);
        assert_eq!(num_matrix_blocks(64), 2);
    }
}
