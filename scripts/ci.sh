#!/usr/bin/env bash
# Full local CI: release build, tests, lints, formatting.
# The build environment is offline — all external deps are vendored under
# vendor/ — so every cargo invocation passes --offline.
#
# `ci.sh --bench` additionally runs the wall-clock bench gate: quick-mode
# smoke runs of the criterion harnesses for the hot-path benches, then the
# hand-rolled bench_gate binary, which rewrites BENCH_pipeline.json at the
# repo root and exits non-zero if any bench regressed >15% against the
# committed baseline (tolerance override: TT_BENCH_TOLERANCE=0.25).
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    *) echo "ci.sh: unknown argument '$arg' (supported: --bench)" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> retry-cost bench (smoke)"
# Criterion --test mode runs each bench once: proves the partial-redo
# retry-cost report (and its 1.5/num_cores bound assertion) still passes
# without paying full measurement time.
cargo bench -q --offline -p tt-bench --bench retry_cost -- --test

echo "==> traced --profile smoke"
# Runs the small-N profiled demo: internally asserts the traced run is
# bitwise-identical to the untraced one and that kernel spans reconcile
# with busy_cycles, then writes the Chrome trace + metrics dumps. We
# additionally assert the trace is non-empty, valid-looking JSON.
cargo run --release --offline -p tt-harness --bin accuracy_table -- --profile
test -s results/profile/trace.json
python3 - <<'EOF'
import json
with open("results/profile/trace.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "trace must contain events"
EOF

echo "==> multi-device resilient smoke"
# A 2-card ring with one hot spare and a device loss injected mid-run: the
# CLI runs the resilient Hermite driver, fails over to the spare inside the
# evaluation, re-runs an unfaulted twin, and verifies bit-for-bit. Grep the
# output so a silently-skipped verification fails CI too.
RING_OUT=$(cargo run --release --offline --bin tt-nbody -- run \
  --n 256 --steps 4 --cores 1 --devices 2 --spares 1 --inject-loss 2)
echo "$RING_OUT"
echo "$RING_OUT" | grep -q "failovers: 1"
echo "$RING_OUT" | grep -q "bitwise-identical to unfaulted run: true"

echo "==> serving fault-storm smoke"
# A small seeded multi-tenant campaign through the job server under an
# injected fault storm (device losses, eth flaps, DRAM-ECC bursts): every
# admitted job must complete bitwise-identical to its fault-free golden or
# be shed with a typed rejection, and replaying the seed must reproduce the
# same per-job outcomes. Grep the verdict lines so silent skips fail CI.
# With --profile the run also exercises the observability layer end to end:
# the storm trips breakers, so the flight recorder must write at least one
# post-mortem dump, the attribution buckets must sum exactly to each job's
# latency, and the per-job span trees must render to a valid Chrome trace.
rm -rf results/postmortem
SERVE_OUT=$(cargo run --release --offline -p tt-harness --bin serve_storm -- --jobs 40 --profile)
echo "$SERVE_OUT"
echo "$SERVE_OUT" | grep -q "lost: 0"
echo "$SERVE_OUT" | grep -q "bitwise-identical to fault-free goldens: true"
echo "$SERVE_OUT" | grep -q "deterministic replay digest match: true"
echo "$SERVE_OUT" | grep -q "attribution buckets sum exactly to latency: true (replay bitwise-identical: true)"
echo "$SERVE_OUT" | grep -q "flight-recorder dump: .* -> results/postmortem/"
python3 - <<'EOF'
import glob, json
with open("results/serving_trace.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "serving trace must contain events"
dumps = sorted(glob.glob("results/postmortem/postmortem-*.json"))
assert dumps, "fault storm must leave at least one post-mortem"
with open(dumps[0]) as f:
    pm = json.load(f)
assert pm["ring"]["events"], "post-mortem must carry the last-K event ring"
assert "queue_depth" in pm["snapshot"], "post-mortem must snapshot server state"
EOF

echo "==> tree-code smoke"
# Small-N Barnes-Hut run with the built-in O(N²) cross-check: one tree
# force evaluation is compared against the FP64 direct sum and must land
# inside the θ-dependent error bound before the run proceeds. Grep the
# verdict so a silently-skipped verification fails CI.
TREE_OUT=$(cargo run --release --offline --bin tt-nbody -- run \
  --backend tree --n 2048 --steps 2 --theta 0.6 --verify-direct)
echo "$TREE_OUT"
echo "$TREE_OUT" | grep -q "tree-vs-direct agreement: PASS"

echo "==> block-time-step smoke"
# Hierarchical block steps on a King-model cluster from the IC catalog,
# with the built-in device-vs-direct accuracy verification. The run must
# PASS the accuracy gate and print the active-set launch ledger — the
# proof that launches were sized by the due block, not full-N. Grep all
# three so a silently-skipped verification or a full-N fallback fails CI.
BLOCK_OUT=$(cargo run --release --offline --bin tt-nbody -- run \
  --n 512 --steps 4 --cores 2 --blocks --ic king --verify-direct)
echo "$BLOCK_OUT"
echo "$BLOCK_OUT" | grep -q "king cluster"
echo "$BLOCK_OUT" | grep -q "device-vs-direct accuracy: PASS"
echo "$BLOCK_OUT" | grep -q "active-set ledger:"
echo "$BLOCK_OUT" | grep -Eq "mean active fraction 0\.[0-9]+," # strictly partial launches

echo "==> matrix-kernel / device-catalog smoke"
# The matrix-pipe force kernel on an n150 catalog part, with the built-in
# device-vs-direct accuracy verification: the run must print the catalog
# summary for the part it was built as and PASS the accuracy check. Grep
# both so a silently-skipped verification or a catalog regression fails CI.
MATRIX_OUT=$(cargo run --release --offline --bin tt-nbody -- run \
  --n 512 --steps 2 --cores 1 --arch n150 --force-kernel matrix --verify-direct)
echo "$MATRIX_OUT"
echo "$MATRIX_OUT" | grep -q "device catalog: n150"
echo "$MATRIX_OUT" | grep -q "device-vs-direct accuracy: PASS"

echo "==> cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

if [ "$RUN_BENCH" = 1 ]; then
  echo "==> hot-path bench smoke (criterion --test mode)"
  cargo bench -q --offline -p tt-bench --bench cb_throughput -- --test
  cargo bench -q --offline -p tt-bench --bench tile_ops -- --test

  echo "==> bench regression gate"
  cargo run --release --offline -p tt-bench --bin bench_gate -- --gate
fi

echo "CI OK"
