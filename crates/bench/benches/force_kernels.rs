//! Microbenchmark: force + jerk kernel implementations, pairs/second.
//!
//! The comparison axis of the paper: FP64 golden reference, scalar FP32,
//! SIMD FP32 (AVX-512 stand-in), the threaded driver, and the full device
//! pipeline (functional simulation — note the simulator's wall time is not
//! the device's virtual time; the modeled device time is reported by the
//! `time_to_solution` bench instead).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody::force::{ForceKernel, ReferenceKernel, ScalarMixedKernel, SimdKernel, ThreadedKernel};
use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::DeviceForcePipeline;
use tensix::{Device, DeviceConfig};

fn bench_cpu_kernels(c: &mut Criterion) {
    let n = 512;
    let sys = plummer(PlummerConfig { n, seed: 1, ..PlummerConfig::default() });
    let eps = 0.01;
    let mut group = c.benchmark_group("force_kernels_cpu");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("reference_f64", n), |b| {
        let k = ReferenceKernel::new(eps);
        b.iter(|| k.compute(&sys));
    });
    group.bench_function(BenchmarkId::new("scalar_f32", n), |b| {
        let k = ScalarMixedKernel::new(eps);
        b.iter(|| k.compute(&sys));
    });
    group.bench_function(BenchmarkId::new("simd_f32x16", n), |b| {
        let k = SimdKernel::new(eps);
        b.iter(|| k.compute(&sys));
    });
    group.bench_function(BenchmarkId::new("threaded_simd_x4", n), |b| {
        let k = ThreadedKernel::new(SimdKernel::new(eps), 4);
        b.iter(|| k.compute(&sys));
    });
    group.finish();
}

fn bench_device_pipeline(c: &mut Criterion) {
    let n = 256;
    let sys = plummer(PlummerConfig { n, seed: 2, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let pipeline = DeviceForcePipeline::new(Arc::clone(&device), n, 0.01, 1).unwrap();
    let mut group = c.benchmark_group("force_kernels_device_sim");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function(BenchmarkId::new("wormhole_functional", n), |b| {
        b.iter(|| pipeline.evaluate(&sys).unwrap());
    });
    group.finish();

    let t = pipeline.timing();
    eprintln!(
        "device virtual time per evaluation at N={n}: {:.3} ms (modeled, 1 core)",
        t.device_seconds / t.evaluations as f64 * 1e3
    );
}

criterion_group!(benches, bench_cpu_kernels, bench_device_pipeline);
criterion_main!(benches);
