//! Initial-condition generators.
//!
//! Direct N-body studies of dense stellar systems — the paper's motivating
//! application — conventionally start from equilibrium cluster models. All
//! generators are seeded and deterministic.

mod cold_collapse;
mod king;
mod plummer;
mod two_cluster;
mod uniform;

pub use cold_collapse::cold_collapse;
pub use king::{king, solve_king_profile, KingConfig, KingProfile};
pub use plummer::{plummer, PlummerConfig, PLUMMER_SCALE};
pub use two_cluster::{two_cluster_merger, TwoClusterConfig};
pub use uniform::{uniform_sphere, UniformConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::particle::Vec3;

/// Seeded RNG used by every generator.
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A uniformly random direction on the unit sphere.
pub(crate) fn random_direction(rng: &mut SmallRng) -> Vec3 {
    // Marsaglia: z uniform in [-1, 1], azimuth uniform.
    let z: f64 = rng.gen_range(-1.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).sqrt();
    [s * phi.cos(), s * phi.sin(), z]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_unit_and_isotropic() {
        let mut r = rng(1);
        let mut mean = [0.0f64; 3];
        let n = 20_000;
        for _ in 0..n {
            let d = random_direction(&mut r);
            let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
            for k in 0..3 {
                mean[k] += d[k];
            }
        }
        for m in mean {
            assert!(
                (m / n as f64).abs() < 0.02,
                "directional bias {} over {n} samples",
                m / n as f64
            );
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: f64 = rng(42).gen();
        let b: f64 = rng(42).gen();
        let c: f64 = rng(43).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
