//! Latency attribution: decompose each served job's end-to-end latency
//! into queue/service/retry/migration/degrade buckets and roll the buckets
//! up per tenant and per backend class with p50/p99 quantiles.
//!
//! The input is the serving layer's span trees (`tt_trace::serving`): each
//! tree's phases contiguously tile the job's sojourn in integer virtual
//! nanoseconds, so the per-job buckets here sum to the end-to-end latency
//! **exactly** — equality, not tolerance — and replaying the same campaign
//! seed reproduces every number bitwise. This is the serving-layer answer
//! to "where did this job's p99 go?": queue wait, productive service,
//! thrown-away retry attempts, checkpoint migration, or CPU degradation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tt_trace::serving::{JobPhase, JobSpanTree};

use crate::stats::percentile;

/// One job's latency decomposition, integer virtual nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAttribution {
    /// Campaign-unique job id.
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Disposition tag from the span tree (`device`, `cpu-degraded`, `shed`).
    pub outcome: String,
    /// Backend class label (`device`, `tree600`, `cpu`, `-` when shed).
    pub class: String,
    /// Admission to dispatch (or to shed).
    pub queue_ns: u64,
    /// The successful service attempt on a fleet backend.
    pub service_ns: u64,
    /// Failed attempts: work and backoff discarded by terminal faults.
    pub retry_ns: u64,
    /// Checkpoint restores onto other backends.
    pub migration_ns: u64,
    /// Service on the host CPU evaluator.
    pub degrade_ns: u64,
    /// End-to-end latency, `finish - arrival`.
    pub total_ns: u64,
}

impl JobAttribution {
    /// Sum of the five buckets; equals [`JobAttribution::total_ns`] for any
    /// tree that passes `JobSpanTree::check` (the phases tile the sojourn).
    #[must_use]
    pub fn bucket_sum_ns(&self) -> u64 {
        self.queue_ns + self.service_ns + self.retry_ns + self.migration_ns + self.degrade_ns
    }
}

/// Decompose one span tree into buckets.
///
/// # Errors
/// Propagates the well-formedness violation if the tree does not tile its
/// sojourn (see `JobSpanTree::check`) — attribution on a malformed tree
/// would silently miscount.
pub fn attribute(tree: &JobSpanTree) -> Result<JobAttribution, String> {
    tree.check()?;
    let mut a = JobAttribution {
        job_id: tree.job_id,
        tenant: tree.tenant,
        outcome: tree.outcome.clone(),
        class: tree.class.clone(),
        queue_ns: 0,
        service_ns: 0,
        retry_ns: 0,
        migration_ns: 0,
        degrade_ns: 0,
        total_ns: tree.latency_ns(),
    };
    for p in &tree.phases {
        let bucket = match p.phase {
            JobPhase::Queue => &mut a.queue_ns,
            JobPhase::Service => &mut a.service_ns,
            JobPhase::Retry => &mut a.retry_ns,
            JobPhase::Migration => &mut a.migration_ns,
            JobPhase::Degrade => &mut a.degrade_ns,
        };
        *bucket += p.dur_ns();
    }
    debug_assert_eq!(a.bucket_sum_ns(), a.total_ns);
    Ok(a)
}

/// Aggregate buckets over a group of jobs with p50/p99 over total latency.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRollup {
    /// Group key: tenant id rendered as a number, or a class label.
    pub key: String,
    /// Jobs in the group.
    pub jobs: usize,
    /// Summed queue nanoseconds.
    pub queue_ns: u64,
    /// Summed service nanoseconds.
    pub service_ns: u64,
    /// Summed retry nanoseconds.
    pub retry_ns: u64,
    /// Summed migration nanoseconds.
    pub migration_ns: u64,
    /// Summed degrade nanoseconds.
    pub degrade_ns: u64,
    /// Summed end-to-end nanoseconds.
    pub total_ns: u64,
    /// p50 of per-job end-to-end latency, nanoseconds (0 when empty).
    pub p50_total_ns: u64,
    /// p99 of per-job end-to-end latency, nanoseconds (0 when empty).
    pub p99_total_ns: u64,
}

fn rollup(key: String, group: &[&JobAttribution]) -> AttributionRollup {
    let lat: Vec<f64> = group.iter().map(|a| a.total_ns as f64).collect();
    let (p50, p99) = if lat.is_empty() {
        (0, 0)
    } else {
        (percentile(&lat, 50.0).round() as u64, percentile(&lat, 99.0).round() as u64)
    };
    AttributionRollup {
        key,
        jobs: group.len(),
        queue_ns: group.iter().map(|a| a.queue_ns).sum(),
        service_ns: group.iter().map(|a| a.service_ns).sum(),
        retry_ns: group.iter().map(|a| a.retry_ns).sum(),
        migration_ns: group.iter().map(|a| a.migration_ns).sum(),
        degrade_ns: group.iter().map(|a| a.degrade_ns).sum(),
        total_ns: group.iter().map(|a| a.total_ns).sum(),
        p50_total_ns: p50,
        p99_total_ns: p99,
    }
}

/// Roll attributions up per tenant, ordered by tenant id.
#[must_use]
pub fn rollup_by_tenant(jobs: &[JobAttribution]) -> Vec<AttributionRollup> {
    let mut by: BTreeMap<usize, Vec<&JobAttribution>> = BTreeMap::new();
    for a in jobs {
        by.entry(a.tenant).or_default().push(a);
    }
    by.iter().map(|(tenant, group)| rollup(format!("tenant{tenant}"), group)).collect()
}

/// Roll attributions up per backend class label, ordered by label. Shed
/// jobs (class `-`) form their own group: all-queue latency.
#[must_use]
pub fn rollup_by_class(jobs: &[JobAttribution]) -> Vec<AttributionRollup> {
    let mut by: BTreeMap<&str, Vec<&JobAttribution>> = BTreeMap::new();
    for a in jobs {
        by.entry(a.class.as_str()).or_default().push(a);
    }
    by.iter().map(|(class, group)| rollup((*class).to_string(), group)).collect()
}

/// Render per-job attributions as CSV (schema in the header).
#[must_use]
pub fn attributions_to_csv(jobs: &[JobAttribution]) -> String {
    let mut out = String::from(
        "job_id,tenant,outcome,class,queue_ns,service_ns,retry_ns,migration_ns,degrade_ns,\
         total_ns\n",
    );
    for a in jobs {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            a.job_id,
            a.tenant,
            a.outcome,
            a.class,
            a.queue_ns,
            a.service_ns,
            a.retry_ns,
            a.migration_ns,
            a.degrade_ns,
            a.total_ns,
        );
    }
    out
}

/// Render rollups as CSV (one row per group; schema in the header).
#[must_use]
pub fn rollups_to_csv(rollups: &[AttributionRollup]) -> String {
    let mut out = String::from(
        "group,jobs,queue_ns,service_ns,retry_ns,migration_ns,degrade_ns,total_ns,\
         p50_total_ns,p99_total_ns\n",
    );
    for r in rollups {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.key,
            r.jobs,
            r.queue_ns,
            r.service_ns,
            r.retry_ns,
            r.migration_ns,
            r.degrade_ns,
            r.total_ns,
            r.p50_total_ns,
            r.p99_total_ns,
        );
    }
    out
}

/// Render rollups as an aligned text table for stdout summaries
/// (milliseconds with three decimals, exact division by 1e6 deferred to
/// formatting only — the CSVs keep the integers).
#[must_use]
pub fn rollups_to_table(title: &str, rollups: &[AttributionRollup]) -> String {
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut out = format!(
        "{title}\n{:<12} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "group",
        "jobs",
        "queue_ms",
        "service_ms",
        "retry_ms",
        "migrate_ms",
        "degrade_ms",
        "p50_ms",
        "p99_ms"
    );
    for r in rollups {
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.key,
            r.jobs,
            ms(r.queue_ns),
            ms(r.service_ns),
            ms(r.retry_ns),
            ms(r.migration_ns),
            ms(r.degrade_ns),
            ms(r.p50_total_ns),
            ms(r.p99_total_ns),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_trace::serving::JobSpanBuilder;

    fn tree(job_id: u64, tenant: usize) -> JobSpanTree {
        let mut jb = JobSpanBuilder::new(job_id, tenant, 0.0);
        jb.begin(JobPhase::Queue, None, "-", 0, 0.0);
        jb.end(0.25, 0);
        jb.begin(JobPhase::Retry, Some(0), "card0", 1, 0.25);
        jb.end(0.5, 1);
        jb.begin(JobPhase::Migration, Some(1), "card1", 2, 0.5);
        jb.end(0.5, 0);
        jb.begin(JobPhase::Service, Some(1), "card1", 2, 0.5);
        jb.end(1.0, 0);
        jb.finish("device", "device", 1.0).unwrap()
    }

    #[test]
    fn buckets_sum_to_total_exactly() {
        let a = attribute(&tree(0, 0)).unwrap();
        assert_eq!(a.queue_ns, 250_000_000);
        assert_eq!(a.retry_ns, 250_000_000);
        assert_eq!(a.migration_ns, 0);
        assert_eq!(a.service_ns, 500_000_000);
        assert_eq!(a.degrade_ns, 0);
        assert_eq!(a.bucket_sum_ns(), a.total_ns);
        assert_eq!(a.total_ns, 1_000_000_000);
    }

    #[test]
    fn malformed_trees_are_refused() {
        let mut t = tree(0, 0);
        t.phases[1].t0_ns += 1;
        assert!(attribute(&t).is_err());
    }

    #[test]
    fn rollups_group_by_tenant_and_class() {
        let jobs: Vec<_> = (0..4).map(|i| attribute(&tree(i, i as usize % 2)).unwrap()).collect();
        let by_tenant = rollup_by_tenant(&jobs);
        assert_eq!(by_tenant.len(), 2);
        assert_eq!(by_tenant[0].key, "tenant0");
        assert_eq!(by_tenant[0].jobs, 2);
        assert_eq!(by_tenant[0].queue_ns, 500_000_000);
        assert_eq!(by_tenant[0].p50_total_ns, 1_000_000_000);
        let by_class = rollup_by_class(&jobs);
        assert_eq!(by_class.len(), 1);
        assert_eq!(by_class[0].key, "device");
        assert_eq!(by_class[0].jobs, 4);
    }

    #[test]
    fn csv_and_table_schemas_are_stable() {
        let jobs = vec![attribute(&tree(9, 3)).unwrap()];
        let csv = attributions_to_csv(&jobs);
        assert!(csv.starts_with("job_id,tenant,outcome,class,queue_ns"));
        assert!(csv.contains("9,3,device,device,250000000,500000000,250000000,0,0,1000000000"));
        let roll = rollups_to_csv(&rollup_by_tenant(&jobs));
        assert!(roll.starts_with("group,jobs,queue_ns"));
        assert!(roll.contains("tenant3,1,"));
        let table = rollups_to_table("per-tenant attribution", &rollup_by_tenant(&jobs));
        assert!(table.contains("per-tenant attribution"));
        assert!(table.contains("tenant3"));
        assert!(table.contains("250.000"));
    }

    #[test]
    fn empty_rollup_is_zeroed_not_panicking() {
        assert!(rollup_by_tenant(&[]).is_empty());
        assert!(rollup_by_class(&[]).is_empty());
        let r = rollup("empty".into(), &[]);
        assert_eq!((r.jobs, r.p50_total_ns, r.p99_total_ns), (0, 0, 0));
    }
}
