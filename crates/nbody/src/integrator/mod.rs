//! Time integrators.
//!
//! The paper's application is a Hermite-scheme direct N-body code: forces
//! *and jerks* feed a 4th-order predictor–corrector, with prediction and
//! correction in FP64 on the host. [`Hermite4`] is that scheme;
//! [`Leapfrog`] is the 2nd-order baseline used to demonstrate why the
//! Hermite scheme (and hence the jerk pipeline the paper offloads) earns its
//! extra cost.

mod block;
mod hermite;
mod leapfrog;
mod timestep;

pub use block::{quantize_block_step, BlockHermite, BlockRunStats};
pub use hermite::Hermite4;
pub use leapfrog::Leapfrog;
pub use timestep::{aarseth_timestep, shared_timestep};

use crate::particle::ParticleSystem;

/// A time integrator advancing the system by fixed steps.
pub trait Integrator {
    /// Integrator name for reports.
    fn name(&self) -> &'static str;

    /// Prime `system.acc`/`system.jerk` before the first step.
    fn initialize(&self, system: &mut ParticleSystem);

    /// Advance by `dt` (N-body time units).
    fn step(&self, system: &mut ParticleSystem, dt: f64);

    /// Advance until `t_end` in fixed steps of `dt` (the final step is
    /// shortened to land exactly on `t_end`). Returns the number of steps.
    fn evolve(&self, system: &mut ParticleSystem, t_end: f64, dt: f64) -> usize {
        assert!(dt > 0.0, "time step must be positive");
        self.initialize(system);
        let mut steps = 0;
        while system.time < t_end - 1e-12 {
            let h = dt.min(t_end - system.time);
            self.step(system, h);
            steps += 1;
        }
        steps
    }
}

/// Build a two-body circular orbit (separation `r`, equal masses m = ½) —
/// the canonical integrator test case with analytic period 2π√(r³/GM).
#[must_use]
pub fn circular_binary(r: f64) -> ParticleSystem {
    let mut s = ParticleSystem::with_capacity(2);
    // Total mass 1, each on a circle of radius r/2: v² = G m_other²/(M r)
    // ⇒ for equal masses, orbital speed of each body v = √(GM/r)/2 · ... :
    // relative orbit: v_rel = √(GM/r); each body moves at v_rel/2.
    let v = (1.0f64 / r).sqrt() / 2.0;
    s.push(0.5, [r / 2.0, 0.0, 0.0], [0.0, v, 0.0]);
    s.push(0.5, [-r / 2.0, 0.0, 0.0], [0.0, -v, 0.0]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::total_energy;
    use crate::force::ReferenceKernel;

    #[test]
    fn circular_binary_is_bound_and_balanced() {
        let s = circular_binary(1.0);
        assert!(total_energy(&s, 0.0) < 0.0);
        assert_eq!(s.com_velocity(), [0.0; 3]);
    }

    #[test]
    fn evolve_lands_exactly_on_t_end() {
        let mut s = circular_binary(1.0);
        let integ = Hermite4::new(ReferenceKernel::new(0.0));
        let steps = integ.evolve(&mut s, 0.25, 0.1);
        assert_eq!(steps, 3, "0.1 + 0.1 + 0.05");
        assert!((s.time - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn evolve_rejects_bad_dt() {
        let mut s = circular_binary(1.0);
        Hermite4::new(ReferenceKernel::new(0.0)).evolve(&mut s, 1.0, 0.0);
    }
}
