//! Property-based tests on physics invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use nbody::diagnostics::{angular_momentum, total_energy};
use nbody::force::{ForceKernel, ReferenceKernel, ScalarMixedKernel, SimdKernel, ThreadedKernel};
use nbody::ic::{plummer, uniform_sphere, PlummerConfig, UniformConfig};
use nbody::integrator::{Hermite4, Integrator, Leapfrog};
use nbody::particle::ParticleSystem;

fn arb_system(max_n: usize) -> impl Strategy<Value = ParticleSystem> {
    (2..max_n).prop_flat_map(|n| {
        (vec(0.01f64..2.0, n), vec(-3.0f64..3.0, 3 * n), vec(-1.0f64..1.0, 3 * n)).prop_map(
            move |(mass, pos, vel)| {
                let mut s = ParticleSystem::with_capacity(n);
                for i in 0..n {
                    s.push(
                        mass[i],
                        [pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]],
                        [vel[3 * i], vel[3 * i + 1], vel[3 * i + 2]],
                    );
                }
                s
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Newton's third law: the mass-weighted sum of accelerations vanishes
    /// for arbitrary (softened) systems, in every kernel.
    #[test]
    fn momentum_conservation(sys in arb_system(40), eps in 0.01f64..0.5) {
        let typical = |f: &nbody::Forces| {
            f.acc.iter().map(|a| (a[0]*a[0]+a[1]*a[1]+a[2]*a[2]).sqrt()).sum::<f64>()
                / f.len() as f64
        };
        let kernels: Vec<Box<dyn ForceKernel>> = vec![
            Box::new(ReferenceKernel::new(eps)),
            Box::new(ScalarMixedKernel::new(eps)),
            Box::new(SimdKernel::new(eps)),
        ];
        for k in kernels {
            let f = k.compute(&sys);
            let scale = typical(&f).max(1e-12);
            for c in 0..3 {
                let p: f64 = sys.mass.iter().zip(&f.acc).map(|(m, a)| m * a[c]).sum();
                prop_assert!(
                    p.abs() / (scale * sys.total_mass()) < 1e-3,
                    "{}: net force {p} (typical {scale})", k.name()
                );
            }
        }
    }

    /// Jerk antisymmetry: mass-weighted jerk also sums to ~0.
    #[test]
    fn jerk_momentum_conservation(sys in arb_system(30), eps in 0.05f64..0.5) {
        let f = ReferenceKernel::new(eps).compute(&sys);
        let scale = f
            .jerk
            .iter()
            .map(|j| (j[0]*j[0]+j[1]*j[1]+j[2]*j[2]).sqrt())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for c in 0..3 {
            let p: f64 = sys.mass.iter().zip(&f.jerk).map(|(m, j)| m * j[c]).sum();
            prop_assert!(p.abs() / scale < 1e-10, "net jerk {p} vs scale {scale}");
        }
    }

    /// The threaded kernel is bit-identical to its inner kernel for any
    /// thread count.
    #[test]
    fn threaded_equals_serial(sys in arb_system(25), threads in 1usize..9) {
        let serial = ReferenceKernel::new(0.1).compute(&sys);
        let par = ThreadedKernel::new(ReferenceKernel::new(0.1), threads).compute(&sys);
        prop_assert_eq!(serial.acc, par.acc);
        prop_assert_eq!(serial.jerk, par.jerk);
    }

    /// Plummer sampling: unit mass, COM at origin, bound for every seed.
    #[test]
    fn plummer_invariants(seed in 0u64..500, n in 16usize..200) {
        let s = plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });
        prop_assert!((s.total_mass() - 1.0).abs() < 1e-10);
        let com = s.center_of_mass();
        for c in com {
            prop_assert!(c.abs() < 1e-9);
        }
        prop_assert!(total_energy(&s, 0.0) < 0.0, "cluster must be bound");
    }

    /// Uniform-sphere virial rescaling hits any requested target.
    #[test]
    fn uniform_virial_targets(seed in 0u64..200, q in 0.05f64..1.8) {
        let s = uniform_sphere(UniformConfig { n: 128, seed, virial_ratio: q, ..Default::default() });
        let t = nbody::diagnostics::kinetic_energy(&s);
        let w = nbody::diagnostics::potential_energy(&s, 0.0);
        prop_assert!(((-t / w) - q).abs() < 1e-6, "Q = {}", -t / w);
    }

    /// One Hermite step conserves angular momentum to high order for
    /// arbitrary softened systems and small steps.
    #[test]
    fn hermite_step_angular_momentum(seed in 0u64..100) {
        let mut s = plummer(PlummerConfig { n: 24, seed, ..PlummerConfig::default() });
        let integ = Hermite4::new(ReferenceKernel::new(0.1));
        let l0 = angular_momentum(&s);
        integ.initialize(&mut s);
        integ.step(&mut s, 1.0 / 1024.0);
        let l1 = angular_momentum(&s);
        for c in 0..3 {
            prop_assert!((l1[c] - l0[c]).abs() < 1e-9, "dL = {}", l1[c] - l0[c]);
        }
    }

    /// Leapfrog is time-reversible: stepping forward then backward returns
    /// the initial state to rounding accuracy.
    #[test]
    fn leapfrog_time_reversible(seed in 0u64..100) {
        let mut s = plummer(PlummerConfig { n: 16, seed, ..PlummerConfig::default() });
        let s0 = s.clone();
        let integ = Leapfrog::new(ReferenceKernel::new(0.05));
        integ.initialize(&mut s);
        let dt = 1.0 / 256.0;
        for _ in 0..4 { integ.step(&mut s, dt); }
        // Reverse velocities and step the same distance.
        for v in &mut s.vel { for c in v.iter_mut() { *c = -*c; } }
        let back = Leapfrog::new(ReferenceKernel::new(0.05));
        back.initialize(&mut s);
        for _ in 0..4 { back.step(&mut s, dt); }
        for i in 0..s.len() {
            for c in 0..3 {
                prop_assert!(
                    (s.pos[i][c] - s0.pos[i][c]).abs() < 1e-10,
                    "particle {i} axis {c}: {} vs {}", s.pos[i][c], s0.pos[i][c]
                );
            }
        }
    }
}
