//! Experiment bench E6 — the paper's stated next step: multi-device strong
//! and weak scaling from the calibrated model, plus a functional check that
//! splitting the outer loop across more Tensix cores shortens the modeled
//! device time.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::{DeviceForcePipeline, WormholePerfModel};
use tensix::{Device, DeviceConfig};
use tt_harness::{default_run, run_scaling};

fn e6_report(_c: &mut Criterion) {
    let r = run_scaling(&default_run());
    eprintln!("=== E6 scaling (model, paper-scale N) ===");
    let t1 = r.strong[0].1;
    for (d, t) in &r.strong {
        eprintln!("strong: {d} device(s) -> {t:.1} s (speedup {:.2}x)", t1 / t);
    }
    for (d, n, t) in &r.weak {
        eprintln!("weak:   {d} device(s), N = {n} -> {t:.1} s");
    }
}

fn bench_core_scaling_functional(c: &mut Criterion) {
    // Functional: 2 target tiles over 1 vs 2 cores; virtual device time
    // should roughly halve while wall time reflects simulator threading.
    let n = 2048;
    let sys = plummer(PlummerConfig { n, seed: 5, ..PlummerConfig::default() });
    let mut group = c.benchmark_group("core_scaling_functional");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for cores in [1usize, 2] {
        let device = Device::new(0, DeviceConfig::default());
        let pipeline = DeviceForcePipeline::new(Arc::clone(&device), n, 0.01, cores).unwrap();
        group.bench_function(BenchmarkId::new("cores", cores), |b| {
            b.iter(|| pipeline.evaluate(&sys).unwrap());
        });
        let t = pipeline.timing();
        eprintln!(
            "cores = {cores}: modeled device time/eval {:.2} ms",
            t.device_seconds / t.evaluations as f64 * 1e3
        );
    }
    group.finish();

    // Analytic cross-check at paper N.
    let m64 = WormholePerfModel::default();
    let m128 = WormholePerfModel { cores: 128, ..m64 };
    eprintln!(
        "model: eval at N=102400 with 64 cores {:.3} s, 128 cores {:.3} s",
        m64.eval_seconds(102_400),
        m128.eval_seconds(102_400)
    );
}

criterion_group!(benches, e6_report, bench_core_scaling_functional);
criterion_main!(benches);
