//! Discrete energy integration of sampled power.
//!
//! "The energy-to-solution for each Wormhole card is calculated as the
//! discrete integral of power over the simulation time (excluding the sleep
//! phases)."

use crate::sample::PowerSample;

/// Left-rectangle discrete integral of a sample series over `[t0, t1)`, J.
/// Each sample's power is held until the next sample (or `t1`).
#[must_use]
pub fn integrate_samples(samples: &[PowerSample], t0: f64, t1: f64) -> f64 {
    let window: Vec<&PowerSample> = samples.iter().filter(|s| s.t >= t0 && s.t < t1).collect();
    let mut e = 0.0;
    for (i, s) in window.iter().enumerate() {
        let next_t = window.get(i + 1).map_or(t1, |n| n.t);
        e += s.watts * (next_t - s.t);
    }
    // Lead-in: the power before the first in-window sample applies from t0.
    if let Some(first) = window.first() {
        if let Some(prev) = samples.iter().rev().find(|s| s.t < t0) {
            e += prev.watts * (first.t - t0);
        }
    }
    e
}

/// Trapezoidal variant (second-order accurate for smooth power).
#[must_use]
pub fn integrate_samples_trapezoid(samples: &[PowerSample], t0: f64, t1: f64) -> f64 {
    let window: Vec<&PowerSample> = samples.iter().filter(|s| s.t >= t0 && s.t < t1).collect();
    let mut e = 0.0;
    for pair in window.windows(2) {
        e += 0.5 * (pair[0].watts + pair[1].watts) * (pair[1].t - pair[0].t);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(dt: f64, n: usize, f: impl Fn(f64) -> f64) -> Vec<PowerSample> {
        (0..n).map(|i| PowerSample { t: i as f64 * dt, watts: f(i as f64 * dt) }).collect()
    }

    #[test]
    fn constant_power_exact() {
        let s = series(1.0, 100, |_| 50.0);
        let e = integrate_samples(&s, 0.0, 99.0);
        assert!((e - 50.0 * 99.0).abs() < 1e-9);
    }

    #[test]
    fn window_excludes_sleep_phases() {
        // 10 W for t<100 ("sleep"), 30 W for 100..=200, 10 W after.
        let s = series(1.0, 300, |t| if (100.0..200.0).contains(&t) { 30.0 } else { 10.0 });
        let e = integrate_samples(&s, 100.0, 200.0);
        assert!((e - 3000.0).abs() < 30.0 + 1e-9, "energy {e}");
        // The full-job integral is much larger.
        let full = integrate_samples(&s, 0.0, 299.0);
        assert!(full > e + 1500.0);
    }

    #[test]
    fn trapezoid_exact_on_ramp() {
        // P = t sampled at t = 0..10; the window [0, 10) keeps samples
        // 0..=9, so the trapezoid covers [0, 9] and must equal ∫₀⁹ t dt.
        let s = series(1.0, 11, |t| t);
        let trap = integrate_samples_trapezoid(&s, 0.0, 10.0);
        assert!((trap - 40.5).abs() < 1e-12, "trap {trap}");
        // The left-rectangle rule underestimates a rising ramp.
        let rect = integrate_samples(&s, 0.0, 10.0);
        assert!(rect < 50.0 && rect > 40.0, "rect {rect}");
    }

    #[test]
    fn empty_window_is_zero() {
        let s = series(1.0, 10, |_| 5.0);
        assert_eq!(integrate_samples(&s, 100.0, 200.0), 0.0);
        assert_eq!(integrate_samples_trapezoid(&s, 100.0, 200.0), 0.0);
    }
}
