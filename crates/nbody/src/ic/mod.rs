//! Initial-condition generators.
//!
//! Direct N-body studies of dense stellar systems — the paper's motivating
//! application — conventionally start from equilibrium cluster models. All
//! generators are seeded and deterministic.

mod binary_rich;
mod cold_collapse;
mod king;
mod plummer;
mod two_cluster;
mod uniform;

pub use binary_rich::{binary_rich, BinaryRichConfig};
pub use cold_collapse::cold_collapse;
pub use king::{king, solve_king_profile, KingConfig, KingProfile};
pub use plummer::{plummer, PlummerConfig, PLUMMER_SCALE};
pub use two_cluster::{two_cluster_merger, TwoClusterConfig};
pub use uniform::{uniform_sphere, UniformConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::particle::{ParticleSystem, Vec3};

/// The named initial-condition catalog, as CLIs and job specs select it.
/// Every entry builds a seeded, bitwise-reproducible system of exactly `n`
/// particles with total mass 1 in the center-of-mass frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IcKind {
    /// Equilibrium Plummer sphere (the paper's configuration).
    #[default]
    Plummer,
    /// King model (w0 = 6), the truncated cluster profile.
    King,
    /// Uniform-density sphere.
    Uniform,
    /// Cold (pressure-free) collapse — the core-collapse stress case.
    ColdCollapse,
    /// Two-cluster merger on an approach orbit.
    Merger,
    /// Plummer sphere with a fraction of stars replaced by tight binaries —
    /// the block-time-step stress case.
    BinaryRich,
}

impl IcKind {
    /// Every catalog entry, in display order.
    pub const ALL: [IcKind; 6] = [
        IcKind::Plummer,
        IcKind::King,
        IcKind::Uniform,
        IcKind::ColdCollapse,
        IcKind::Merger,
        IcKind::BinaryRich,
    ];

    /// The spec name (`--ic` value / job-spec string) of this entry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IcKind::Plummer => "plummer",
            IcKind::King => "king",
            IcKind::Uniform => "uniform",
            IcKind::ColdCollapse => "collapse",
            IcKind::Merger => "merger",
            IcKind::BinaryRich => "binary",
        }
    }

    /// Build the catalog system of `n` particles from `seed`, with each
    /// generator's standard shape parameters.
    #[must_use]
    pub fn build(self, n: usize, seed: u64) -> ParticleSystem {
        match self {
            IcKind::Plummer => plummer(PlummerConfig { n, seed, ..Default::default() }),
            IcKind::King => king(KingConfig { n, seed, w0: 6.0 }),
            IcKind::Uniform => uniform_sphere(UniformConfig { n, seed, ..Default::default() }),
            IcKind::ColdCollapse => cold_collapse(n, seed, 1.0),
            IcKind::Merger => two_cluster_merger(TwoClusterConfig {
                n1: n / 2,
                n2: n - n / 2,
                seed,
                ..Default::default()
            }),
            IcKind::BinaryRich => binary_rich(BinaryRichConfig { n, seed, ..Default::default() }),
        }
    }
}

impl std::str::FromStr for IcKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IcKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            format!("unknown IC '{s}'; expected plummer|king|uniform|collapse|merger|binary")
        })
    }
}

impl std::fmt::Display for IcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Seeded RNG used by every generator.
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A uniformly random direction on the unit sphere.
pub(crate) fn random_direction(rng: &mut SmallRng) -> Vec3 {
    // Marsaglia: z uniform in [-1, 1], azimuth uniform.
    let z: f64 = rng.gen_range(-1.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).sqrt();
    [s * phi.cos(), s * phi.sin(), z]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_unit_and_isotropic() {
        let mut r = rng(1);
        let mut mean = [0.0f64; 3];
        let n = 20_000;
        for _ in 0..n {
            let d = random_direction(&mut r);
            let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
            for k in 0..3 {
                mean[k] += d[k];
            }
        }
        for m in mean {
            assert!(
                (m / n as f64).abs() < 0.02,
                "directional bias {} over {n} samples",
                m / n as f64
            );
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: f64 = rng(42).gen();
        let b: f64 = rng(42).gen();
        let c: f64 = rng(43).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
