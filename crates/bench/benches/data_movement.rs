//! Ablation bench: replicated (paper) vs broadcast-optimized source data
//! movement. Arithmetic is identical (bit-for-bit asserted by tests); the
//! difference is DRAM/PCIe traffic, the optimization the paper's §5 flags
//! as future work. Reports functional throughput plus the model's
//! paper-scale projection.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::perf_model::paper_run;
use nbody_tt::{BroadcastForcePipeline, DeviceForcePipeline};
use tensix::{Device, DeviceConfig};

fn bench_pipelines(c: &mut Criterion) {
    let n = 512;
    let sys = plummer(PlummerConfig { n, seed: 9, ..PlummerConfig::default() });
    let mut group = c.benchmark_group("data_movement_ablation");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(6));

    let dev_rep = Device::new(0, DeviceConfig::default());
    let replicated = DeviceForcePipeline::new(Arc::clone(&dev_rep), n, 0.01, 1).unwrap();
    group.bench_function(BenchmarkId::new("replicated", n), |b| {
        b.iter(|| replicated.evaluate(&sys).unwrap());
    });

    let dev_bc = Device::new(0, DeviceConfig::default());
    let broadcast = BroadcastForcePipeline::new(Arc::clone(&dev_bc), n, 0.01, 1).unwrap();
    group.bench_function(BenchmarkId::new("broadcast", n), |b| {
        b.iter(|| broadcast.evaluate(&sys).unwrap());
    });
    group.finish();

    eprintln!("functional NoC traffic per eval at N={n}:");
    let evals_rep = replicated.timing().evaluations.max(1);
    let evals_bc = broadcast.timing().evaluations.max(1);
    eprintln!(
        "  replicated: {:.1} MB",
        dev_rep.noc().total_bytes() as f64 / evals_rep as f64 / 1e6
    );
    eprintln!("  broadcast:  {:.3} MB", dev_bc.noc().total_bytes() as f64 / evals_bc as f64 / 1e6);

    let run = paper_run();
    eprintln!(
        "paper-scale projection: replicated {:.1} s -> broadcast {:.1} s ({:.2}x speedup over CPU)",
        run.accel_seconds(),
        run.accel_seconds_optimized(),
        run.cpu_seconds() / run.accel_seconds_optimized(),
    );
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
