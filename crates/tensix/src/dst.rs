//! The Tensix destination register file (`dst`).
//!
//! `dst` is a 32 KiB register file organized into 16 segments; compute
//! results land here before the packer moves them to SRAM. Capacity is 16
//! tiles in 16-bit formats and 8 tiles in FP32 — the constraint that forced
//! the paper's kernel to stage dx/dy/dz in L1 CBs instead of keeping them
//! resident. The acquire/commit/wait/release protocol coordinates the MATH
//! and PACK cores; the simulator enforces it so incorrectly synchronized
//! kernels fail loudly.

use crate::dtype::DataFormat;
use crate::error::{Result, TensixError};
use crate::tile::Tile;

/// Ownership phase of the dst register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DstPhase {
    /// Nobody holds dst.
    Idle,
    /// MATH holds dst (after `tile_regs_acquire`).
    Math,
    /// MATH committed; PACK may read (after `tile_regs_commit` +
    /// `tile_regs_wait`).
    Pack,
}

/// Simulated dst register file for one Tensix core.
#[derive(Debug)]
pub struct DstRegisters {
    format: DataFormat,
    tiles: Vec<Option<Tile>>,
    phase: DstPhase,
}

impl DstRegisters {
    /// Create a dst file for the given math format. Capacity follows the
    /// format (16 tiles for 16-bit formats, 8 for FP32).
    #[must_use]
    pub fn new(format: DataFormat) -> Self {
        DstRegisters {
            format,
            tiles: (0..format.dst_capacity_tiles()).map(|_| None).collect(),
            phase: DstPhase::Idle,
        }
    }

    /// Tile capacity for the active format.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.tiles.len()
    }

    /// Active math format.
    #[must_use]
    pub fn format(&self) -> DataFormat {
        self.format
    }

    /// `tile_regs_acquire`: MATH takes ownership. Clears previous contents.
    ///
    /// # Panics
    /// Panics if dst is already held (double acquire is a kernel bug).
    pub fn acquire(&mut self) {
        assert_eq!(self.phase, DstPhase::Idle, "tile_regs_acquire while dst is held");
        for t in &mut self.tiles {
            *t = None;
        }
        self.phase = DstPhase::Math;
    }

    /// `tile_regs_commit`: MATH hands dst to PACK.
    ///
    /// # Panics
    /// Panics unless MATH currently holds dst.
    pub fn commit(&mut self) {
        assert_eq!(self.phase, DstPhase::Math, "tile_regs_commit without acquire");
        self.phase = DstPhase::Pack;
    }

    /// `tile_regs_release`: PACK frees dst for the next iteration.
    ///
    /// # Panics
    /// Panics unless dst is in the pack phase.
    pub fn release(&mut self) {
        assert_eq!(self.phase, DstPhase::Pack, "tile_regs_release without commit");
        self.phase = DstPhase::Idle;
    }

    fn check_index(&self, index: usize) -> Result<()> {
        if index >= self.tiles.len() {
            return Err(TensixError::DstIndexOutOfRange { index, capacity: self.tiles.len() });
        }
        Ok(())
    }

    /// Write a tile into dst segment `index` (MATH phase only).
    ///
    /// # Errors
    /// [`TensixError::DstIndexOutOfRange`] if `index` exceeds the capacity —
    /// exactly the register-spill hazard the paper works around with L1 CBs.
    ///
    /// # Panics
    /// Panics if MATH does not hold dst.
    pub fn write(&mut self, index: usize, tile: Tile) -> Result<()> {
        assert_eq!(self.phase, DstPhase::Math, "dst write outside math phase");
        self.check_index(index)?;
        self.tiles[index] = Some(tile);
        Ok(())
    }

    /// Read dst segment `index` during the MATH phase (for in-place SFPU ops
    /// and binary dst-dst ops).
    ///
    /// # Errors
    /// Out-of-range index, or reading a segment never written.
    pub fn read_math(&self, index: usize) -> Result<Tile> {
        assert_eq!(self.phase, DstPhase::Math, "dst math read outside math phase");
        self.check_index(index)?;
        self.tiles[index]
            .clone()
            .ok_or(TensixError::KernelFault { message: format!("dst[{index}] read before write") })
    }

    /// Read dst segment `index` during the PACK phase.
    ///
    /// # Errors
    /// Out-of-range index, or reading a segment never written.
    ///
    /// # Panics
    /// Panics unless dst was committed.
    pub fn read_pack(&self, index: usize) -> Result<Tile> {
        assert_eq!(self.phase, DstPhase::Pack, "pack read before tile_regs_commit");
        self.check_index(index)?;
        self.tiles[index].clone().ok_or(TensixError::KernelFault {
            message: format!("dst[{index}] packed before write"),
        })
    }

    /// Mutable access to a written segment (MATH phase, SFPU in-place ops).
    ///
    /// # Errors
    /// Out-of-range index or unwritten segment.
    pub fn modify(&mut self, index: usize) -> Result<&mut Tile> {
        assert_eq!(self.phase, DstPhase::Math, "dst modify outside math phase");
        self.check_index(index)?;
        self.tiles[index].as_mut().ok_or(TensixError::KernelFault {
            message: format!("dst[{index}] modified before write"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(v: f32) -> Tile {
        Tile::splat(DataFormat::Float32, v)
    }

    #[test]
    fn capacity_follows_format() {
        assert_eq!(DstRegisters::new(DataFormat::Float32).capacity(), 8);
        assert_eq!(DstRegisters::new(DataFormat::Float16b).capacity(), 16);
    }

    #[test]
    fn acquire_write_commit_pack_cycle() {
        let mut dst = DstRegisters::new(DataFormat::Float32);
        dst.acquire();
        dst.write(0, tile(5.0)).unwrap();
        assert_eq!(dst.read_math(0).unwrap().get(0, 0), 5.0);
        dst.commit();
        assert_eq!(dst.read_pack(0).unwrap().get(1, 1), 5.0);
        dst.release();
        // Next acquire clears contents.
        dst.acquire();
        assert!(dst.read_math(0).is_err());
    }

    #[test]
    fn fp32_overflow_is_the_paper_spill_hazard() {
        let mut dst = DstRegisters::new(DataFormat::Float32);
        dst.acquire();
        for i in 0..8 {
            dst.write(i, tile(i as f32)).unwrap();
        }
        let err = dst.write(8, tile(8.0)).unwrap_err();
        assert_eq!(err, TensixError::DstIndexOutOfRange { index: 8, capacity: 8 });
        // The same index would be fine in BF16.
        let mut dst16 = DstRegisters::new(DataFormat::Float16b);
        dst16.acquire();
        dst16.write(8, Tile::splat(DataFormat::Float16b, 1.0)).unwrap();
    }

    #[test]
    #[should_panic(expected = "while dst is held")]
    fn double_acquire_panics() {
        let mut dst = DstRegisters::new(DataFormat::Float32);
        dst.acquire();
        dst.acquire();
    }

    #[test]
    #[should_panic(expected = "without acquire")]
    fn commit_without_acquire_panics() {
        DstRegisters::new(DataFormat::Float32).commit();
    }

    #[test]
    #[should_panic(expected = "before tile_regs_commit")]
    fn pack_read_before_commit_panics() {
        let mut dst = DstRegisters::new(DataFormat::Float32);
        dst.acquire();
        dst.write(0, tile(1.0)).unwrap();
        let _ = dst.read_pack(0);
    }

    #[test]
    fn modify_in_place() {
        let mut dst = DstRegisters::new(DataFormat::Float32);
        dst.acquire();
        dst.write(2, tile(3.0)).unwrap();
        dst.modify(2).unwrap().as_mut_slice()[0] = 9.0;
        assert_eq!(dst.read_math(2).unwrap().get(0, 0), 9.0);
    }
}
