//! Tree-code cost accounting — the Barnes-Hut analogue of [`crate::RetryCost`].
//!
//! The direct-sum pipeline reports its work through the three-bucket
//! `PipelineTiming` (busy / redo / wasted device cycles). A tree-code
//! evaluation has a different shape: a host-side octree *build*, a
//! traversal + far-field *walk*, and a *near-field* phase that either runs
//! on the host or routes interaction patches through the tiled device
//! pipeline. `TreeCost` carries those buckets alongside deterministic
//! interaction counts, so campaign telemetry and the bench gate can report
//! the O(N log N) split without reaching into the evaluator.
//!
//! Wall-clock seconds are measurement noise (they vary run to run); the
//! interaction and node counts are exact and bitwise-reproducible for a
//! fixed input, which is what the server's deterministic service model and
//! the scaling experiments key off.

/// Per-phase cost breakdown of Barnes-Hut evaluations in one window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TreeCost {
    /// Host seconds spent Morton-sorting and building the octree.
    pub build_seconds: f64,
    /// Host seconds spent traversing and evaluating the far-field
    /// multipoles.
    pub walk_seconds: f64,
    /// Seconds spent on the near-field phase (host direct pairs, or
    /// staging + launching device patches in hybrid mode).
    pub near_seconds: f64,
    /// Force evaluations accumulated into this window.
    pub evaluations: u64,
    /// Octree nodes allocated (arena length), summed over evaluations.
    pub nodes: u64,
    /// Leaves of the octree, summed over evaluations.
    pub leaves: u64,
    /// Particle–multipole interactions accepted by the opening criterion.
    pub far_interactions: u64,
    /// Particle–particle near-field interactions (direct pairs inside the
    /// interaction patches, self-pairs excluded).
    pub near_interactions: u64,
}

impl TreeCost {
    /// Fold another window into this one.
    pub fn absorb(&mut self, other: TreeCost) {
        self.build_seconds += other.build_seconds;
        self.walk_seconds += other.walk_seconds;
        self.near_seconds += other.near_seconds;
        self.evaluations += other.evaluations;
        self.nodes += other.nodes;
        self.leaves += other.leaves;
        self.far_interactions += other.far_interactions;
        self.near_interactions += other.near_interactions;
    }

    /// Total interactions evaluated (far multipoles + near pairs) — the
    /// deterministic work metric the server's service model charges for.
    #[must_use]
    pub fn total_interactions(&self) -> u64 {
        self.far_interactions + self.near_interactions
    }

    /// Interactions per evaluation; zero before the first evaluation.
    #[must_use]
    pub fn interactions_per_eval(&self) -> f64 {
        if self.evaluations == 0 {
            return 0.0;
        }
        self.total_interactions() as f64 / self.evaluations as f64
    }

    /// Fraction of interactions handled by the far-field multipole pass.
    /// Zero when nothing ran. High values (→ 1) are the tree-code win: at
    /// N = 1M with θ = 0.6 the far fraction dominates and total work is
    /// O(N log N) instead of N².
    #[must_use]
    pub fn far_fraction(&self) -> f64 {
        let total = self.total_interactions();
        if total == 0 {
            return 0.0;
        }
        self.far_interactions as f64 / total as f64
    }

    /// CSV header matching [`Self::csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "build_s,walk_s,near_s,evals,nodes,leaves,far_inter,near_inter"
    }

    /// One CSV row of this window.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{:.6},{:.6},{:.6},{},{},{},{},{}",
            self.build_seconds,
            self.walk_seconds,
            self.near_seconds,
            self.evaluations,
            self.nodes,
            self.leaves,
            self.far_interactions,
            self.near_interactions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_bucket() {
        let mut a = TreeCost {
            build_seconds: 1.0,
            walk_seconds: 2.0,
            near_seconds: 3.0,
            evaluations: 1,
            nodes: 10,
            leaves: 4,
            far_interactions: 100,
            near_interactions: 50,
        };
        let b = TreeCost {
            build_seconds: 0.5,
            walk_seconds: 0.5,
            near_seconds: 0.5,
            evaluations: 2,
            nodes: 20,
            leaves: 8,
            far_interactions: 200,
            near_interactions: 100,
        };
        a.absorb(b);
        assert_eq!(a.evaluations, 3);
        assert_eq!(a.nodes, 30);
        assert_eq!(a.total_interactions(), 450);
        assert!((a.build_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_on_empty_window() {
        let c = TreeCost::default();
        assert_eq!(c.interactions_per_eval(), 0.0);
        assert_eq!(c.far_fraction(), 0.0);
    }

    #[test]
    fn far_fraction_and_csv_round_trip() {
        let c = TreeCost {
            far_interactions: 75,
            near_interactions: 25,
            evaluations: 1,
            ..TreeCost::default()
        };
        assert!((c.far_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(TreeCost::csv_header().split(',').count(), c.csv_row().split(',').count());
    }
}
