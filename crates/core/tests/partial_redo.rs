//! End-to-end tests of partial-tile redo: a transient fault on one core is
//! recovered by re-launching only that core's tile slice, the result stays
//! bitwise identical to a fault-free run, and the virtual-time retry
//! overhead stays near `1/num_cores` instead of the full re-run's ~1.
//!
//! Two fault flavours are exercised. Injected compute stalls are rolled on
//! the host thread at spawn, so the faulting core is a deterministic
//! function of the one-shot schedule — that drives the per-core property
//! test. Uncorrectable DRAM ECC panics tear down instantly with no
//! watchdog involvement, which keeps the eight-core acceptance run fast
//! (the faulting core is then whichever reader hits the scheduled event,
//! and the partial redo must cope with any of them).

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;

use nbody::ic::{plummer, PlummerConfig};
use nbody::particle::{Forces, ParticleSystem};
use nbody_tt::{DeviceForcePipeline, PipelineTiming, RetryPolicy};
use tensix::fault::{FaultClass, FaultConfig};
use tensix::{Device, DeviceConfig, TILE_ELEMS};

const EPS: f64 = 0.01;
const SMALL_CORES: usize = 2;
const SMALL_N: usize = SMALL_CORES * TILE_ELEMS; // one tile per core

fn small_system() -> ParticleSystem {
    plummer(PlummerConfig { n: SMALL_N, seed: 201, ..PlummerConfig::default() })
}

/// Fault-free forces for [`small_system`], computed once per process.
fn small_golden() -> &'static Forces {
    static GOLDEN: OnceLock<Forces> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let pipeline = DeviceForcePipeline::new(
            Device::new(0, DeviceConfig::default()),
            SMALL_N,
            EPS,
            SMALL_CORES,
        )
        .unwrap();
        pipeline.evaluate(&small_system()).unwrap()
    })
}

/// Stall the force-compute kernel instance on 0-based core `k` of a
/// `num_cores`-core launch and run one evaluation under `policy`.
///
/// Launch order is kernels-outer, cores-inner (reader instances land on
/// fault events `1..=C`, compute on `C+1..=2C`), so the scheduled one-shot
/// deterministically picks core `k`'s compute thread. Teardown of a stalled
/// attempt is watchdog-driven: the stalled core's reader fills its input
/// CBs, blocks, and deadlock-aborts after the watchdog, which poisons only
/// that core and wakes the stalled thread. The watchdog therefore has to
/// beat every *legitimate* wait — on this single-CPU test runner that is
/// roughly the whole serialized program — with margin to spare.
fn run_with_stall(
    system: &ParticleSystem,
    num_cores: usize,
    k: usize,
    policy: RetryPolicy,
) -> (Forces, PipelineTiming) {
    let dev = Device::new(
        0,
        DeviceConfig {
            seed: 7 + k as u64,
            // One-CPU serialization means a legitimate wait can span the
            // whole program (~1 s per tile of 1024² interactions in debug),
            // so the budget scales with the tile count.
            watchdog: Duration::from_secs(4 * num_cores as u64),
            ..DeviceConfig::default()
        },
    );
    dev.faults().schedule(FaultClass::KernelStall, (num_cores + k + 1) as u64);
    let pipeline = DeviceForcePipeline::new(dev, system.len(), EPS, num_cores).unwrap();
    let forces = pipeline.evaluate_with_retry(system, policy).unwrap();
    (forces, pipeline.timing())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Whichever core faults, the partial redo delivers a bitwise-identical
    /// result, performs exactly one single-slice retry, and its overhead
    /// stays under the `1.5/num_cores` acceptance bound.
    #[test]
    fn partial_redo_is_bitwise_identical_for_any_faulting_core(k in 0usize..SMALL_CORES) {
        let sys = small_system();
        let golden = small_golden();

        let (forces, t) = run_with_stall(&sys, SMALL_CORES, k, RetryPolicy::default());
        prop_assert_eq!(&forces.acc, &golden.acc, "acc must be bit-identical after redo");
        prop_assert_eq!(&forces.jerk, &golden.jerk, "jerk must be bit-identical after redo");

        prop_assert_eq!(t.evaluations, 1);
        prop_assert_eq!(t.retries, 1);
        prop_assert_eq!(t.partial_redos, 1, "retry must be a single-slice redo");
        prop_assert!(t.redo_cycles > 0);
        prop_assert!(t.redo_cycles < t.busy_cycles, "redo is a strict subset of useful work");
        prop_assert!(t.wasted_seconds > 0.0, "faulting core's discarded time must be billed");
        prop_assert!(
            t.retry_overhead_ratio() <= 1.5 / SMALL_CORES as f64,
            "overhead {:.4} exceeds 1.5/{}",
            t.retry_overhead_ratio(),
            SMALL_CORES
        );
    }
}

/// Acceptance criterion at the campaign core count: on an eight-core split
/// (the N = 102 400 run's shape, scaled to one tile per core so the debug
/// build stays tractable), a seeded single-core transient fault recovers
/// via partial redo with virtual-time retry overhead at most
/// `1.5/num_cores` of the useful work.
#[test]
fn eight_core_fault_recovers_within_acceptance_bound() {
    let num_cores = 8;
    let n = num_cores * TILE_ELEMS;
    let sys = plummer(PlummerConfig { n, seed: 202, ..PlummerConfig::default() });

    // An uncorrectable DRAM ECC hit panics one reader on its 5th page —
    // long before any tile completes — and tears down that core instantly.
    let dev = Device::new(
        0,
        DeviceConfig {
            faults: FaultConfig { dram_uncorrectable_frac: 1.0, ..FaultConfig::default() },
            seed: 11,
            // Eight interleaved compute threads on one CPU all finish near
            // the end of the serialized program, so a surviving writer
            // legitimately waits almost the whole run (~40 s in debug).
            // Teardown here is panic-driven, not watchdog-driven, so a
            // generous budget costs nothing on the expected path.
            watchdog: Duration::from_secs(180),
            ..DeviceConfig::default()
        },
    );
    dev.faults().schedule(FaultClass::DramRead, 5);
    let pipeline = DeviceForcePipeline::new(dev, n, EPS, num_cores).unwrap();
    let forces = pipeline.evaluate_with_retry(&sys, RetryPolicy::default()).unwrap();
    let t = pipeline.timing();

    assert!(forces.acc.iter().flatten().all(|a| a.is_finite()));
    assert_eq!((t.evaluations, t.retries, t.partial_redos), (1, 1, 1));
    let bound = 1.5 / num_cores as f64;
    assert!(
        t.retry_overhead_ratio() <= bound,
        "overhead {:.4} exceeds bound {bound:.4}",
        t.retry_overhead_ratio()
    );
    // The redo relaunched one of eight equal slices; its cycle cost must
    // sit near 1/8 of the delivered work, nowhere near a full re-run.
    let redo_frac = t.redo_cycles as f64 / t.busy_cycles as f64;
    assert!(redo_frac < 0.2, "redo fraction {redo_frac:.4} not ~1/8");
    assert!(redo_frac > 0.05, "redo fraction {redo_frac:.4} suspiciously small");
}

/// Cost comparison: the same fault handled by a whole-grid re-run wastes
/// the surviving cores' completed work, so its overhead ratio is a
/// multiple of the partial redo's. Three cores is the smallest split where
/// the strategies separate (at two cores, `1/C` and `(C-1)/C` coincide).
#[test]
fn full_rerun_costs_multiples_of_partial_redo() {
    let num_cores = 3;
    let n = num_cores * TILE_ELEMS;
    let sys = plummer(PlummerConfig { n, seed: 203, ..PlummerConfig::default() });

    let (partial_forces, partial) = run_with_stall(&sys, num_cores, 1, RetryPolicy::default());
    let (full_forces, full) = run_with_stall(&sys, num_cores, 1, RetryPolicy::full_rerun());

    // Both strategies recover the same bitwise result (identity against a
    // fault-free run is covered by the per-core property test above).
    assert_eq!(partial_forces.acc, full_forces.acc);
    assert_eq!(partial_forces.jerk, full_forces.jerk);
    assert_eq!(full.partial_redos, 0, "full_rerun must never slice");
    assert_eq!(full.retries, 1);

    // Two surviving cores completed 2/3 of the tiles before the abort, so
    // the full re-run discards at least that much finished work while the
    // partial redo re-executes only the faulting third.
    assert!(full.wasted_cycles > full.busy_cycles / 2);
    assert!(
        full.retry_overhead_ratio() > 1.7 * partial.retry_overhead_ratio(),
        "full {:.4} vs partial {:.4}",
        full.retry_overhead_ratio(),
        partial.retry_overhead_ratio()
    );
}
