//! 32×32 tiles — the unit of data movement and compute on the Wormhole.
//!
//! A tile is a 32×32 matrix of scalars. In DRAM and L1 a tile is stored
//! *tilized*: split into four 16×16 faces (top-left, top-right, bottom-left,
//! bottom-right), each face row-major, faces concatenated. Tilizing makes each
//! tile contiguous in memory, which is what enables the efficient DRAM/NoC
//! streaming the paper relies on.
//!
//! The simulator keeps live tile values as `f32` and applies the storage
//! format's quantization on construction/packing, so FP32 tiles are exact and
//! BF16/FP16 tiles carry representative rounding error.

use std::sync::Arc;

use crate::dtype::DataFormat;

/// Elements along one side of a tile.
pub const TILE_DIM: usize = 32;
/// Elements in a full tile.
pub const TILE_ELEMS: usize = TILE_DIM * TILE_DIM;
/// Elements along one side of a face.
pub const FACE_DIM: usize = 16;
/// Elements in one face.
pub const FACE_ELEMS: usize = FACE_DIM * FACE_DIM;

/// A 32×32 tile of scalars in a given storage format.
///
/// Internally values are stored in *row-major* order (not tilized); the
/// tilized byte layout is produced on demand by [`Tile::to_tilized`] and
/// consumed by [`Tile::from_tilized`].
///
/// The element storage is a shared [`Arc`] with copy-on-write semantics:
/// `Tile::clone` is a reference-count bump (so circular buffers, DRAM pages
/// and dst/src registers hand tiles around zero-copy), and the backing array
/// is only duplicated when a writer calls [`Tile::as_mut_slice`] (or
/// [`Tile::set`]) on a tile whose storage is still shared. Because the copy
/// happens *before* any element is written, readers holding older clones
/// always observe exactly the bits they would have observed under deep
/// copying — the sharing is invisible to simulated results.
#[derive(Clone, Debug)]
pub struct Tile {
    format: DataFormat,
    data: Arc<[f32; TILE_ELEMS]>,
}

impl Tile {
    /// A tile of zeros.
    #[must_use]
    pub fn zeros(format: DataFormat) -> Self {
        Tile { format, data: Arc::new([0.0; TILE_ELEMS]) }
    }

    /// A tile with every element equal to `v` (quantized to `format`).
    #[must_use]
    pub fn splat(format: DataFormat, v: f32) -> Self {
        let q = format.quantize(v);
        Tile { format, data: Arc::new([q; TILE_ELEMS]) }
    }

    /// Build a tile from exactly [`TILE_ELEMS`] row-major values, quantizing
    /// to the storage format.
    ///
    /// # Panics
    /// Panics if `values.len() != 1024`.
    #[must_use]
    pub fn from_rowmajor(format: DataFormat, values: &[f32]) -> Self {
        assert_eq!(values.len(), TILE_ELEMS, "a tile holds exactly 1024 elements");
        let mut data = [0.0; TILE_ELEMS];
        data.copy_from_slice(values);
        format.quantize_slice(&mut data);
        Tile { format, data: Arc::new(data) }
    }

    /// Storage format of this tile.
    #[must_use]
    pub fn format(&self) -> DataFormat {
        self.format
    }

    /// Row-major element view.
    #[must_use]
    pub fn as_slice(&self) -> &[f32; TILE_ELEMS] {
        &self.data
    }

    /// Mutable row-major element view. Callers are responsible for writing
    /// format-representable values (compute units quantize on pack).
    ///
    /// Copy-on-write point: if the backing storage is shared with other
    /// clones it is duplicated here. Hot loops should hoist this call out of
    /// per-element iteration — each call re-checks Arc uniqueness.
    pub fn as_mut_slice(&mut self) -> &mut [f32; TILE_ELEMS] {
        Arc::make_mut(&mut self.data)
    }

    /// Force a deep copy of the backing storage — the pre-zero-copy `clone`
    /// behavior, kept so benchmarks can measure the cost the Arc/COW design
    /// removes.
    #[must_use]
    pub fn deep_clone(&self) -> Tile {
        Tile { format: self.format, data: Arc::new(*self.data) }
    }

    /// Element at matrix position (`row`, `col`).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * TILE_DIM + col]
    }

    /// Set element at matrix position (`row`, `col`), quantizing to the
    /// storage format.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        self.as_mut_slice()[row * TILE_DIM + col] = self.format.quantize(v);
    }

    /// Re-quantize every element to `format` and change the storage format.
    #[must_use]
    pub fn convert(&self, format: DataFormat) -> Tile {
        if self.format == DataFormat::Float32 && format == DataFormat::Float32 {
            // FP32 quantization is the identity, so conversion is a share.
            return self.clone();
        }
        let mut data = *self.data;
        format.quantize_slice(&mut data);
        Tile { format, data: Arc::new(data) }
    }

    /// Produce the tilized (face-ordered) value sequence: face 0 (rows 0–15,
    /// cols 0–15), face 1 (rows 0–15, cols 16–31), face 2, face 3, each face
    /// row-major.
    #[must_use]
    pub fn to_tilized(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; TILE_ELEMS];
        for face in 0..4 {
            let row0 = (face / 2) * FACE_DIM;
            let col0 = (face % 2) * FACE_DIM;
            for r in 0..FACE_DIM {
                // One face row is 16 contiguous row-major elements.
                let src = (row0 + r) * TILE_DIM + col0;
                let dst = face * FACE_ELEMS + r * FACE_DIM;
                out[dst..dst + FACE_DIM].copy_from_slice(&self.data[src..src + FACE_DIM]);
            }
        }
        out
    }

    /// Reconstruct a tile from a tilized value sequence.
    ///
    /// # Panics
    /// Panics if `values.len() != 1024`.
    #[must_use]
    pub fn from_tilized(format: DataFormat, values: &[f32]) -> Self {
        assert_eq!(values.len(), TILE_ELEMS, "a tile holds exactly 1024 elements");
        let mut data = [0.0f32; TILE_ELEMS];
        for face in 0..4 {
            let row0 = (face / 2) * FACE_DIM;
            let col0 = (face % 2) * FACE_DIM;
            for r in 0..FACE_DIM {
                let dst = (row0 + r) * TILE_DIM + col0;
                let src = face * FACE_ELEMS + r * FACE_DIM;
                data[dst..dst + FACE_DIM].copy_from_slice(&values[src..src + FACE_DIM]);
            }
        }
        format.quantize_slice(&mut data);
        Tile { format, data: Arc::new(data) }
    }

    /// Packed size of this tile in bytes.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.format.tile_bytes()
    }
}

/// Tilize a row-major matrix of `rows × cols` values (both multiples of 32)
/// into a row of tiles, tile-row-major: the tile covering matrix rows 0–31 and
/// cols 0–31 first, then cols 32–63, etc.
///
/// This is the host-side `tilize` operation TT-Metalium performs before
/// writing tensors to DRAM.
///
/// # Panics
/// Panics unless `rows` and `cols` are nonzero multiples of 32 and
/// `values.len() == rows * cols`.
#[must_use]
pub fn tilize(format: DataFormat, values: &[f32], rows: usize, cols: usize) -> Vec<Tile> {
    assert!(rows > 0 && rows.is_multiple_of(TILE_DIM), "rows must be a multiple of 32");
    assert!(cols > 0 && cols.is_multiple_of(TILE_DIM), "cols must be a multiple of 32");
    assert_eq!(values.len(), rows * cols);
    let tile_rows = rows / TILE_DIM;
    let tile_cols = cols / TILE_DIM;
    let mut tiles = Vec::with_capacity(tile_rows * tile_cols);
    let mut buf = [0.0f32; TILE_ELEMS];
    for tr in 0..tile_rows {
        for tc in 0..tile_cols {
            for r in 0..TILE_DIM {
                let src = (tr * TILE_DIM + r) * cols + tc * TILE_DIM;
                buf[r * TILE_DIM..(r + 1) * TILE_DIM].copy_from_slice(&values[src..src + TILE_DIM]);
            }
            tiles.push(Tile::from_rowmajor(format, &buf));
        }
    }
    tiles
}

/// Inverse of [`tilize`]: reassemble the row-major matrix from its tiles.
///
/// # Panics
/// Panics unless the tile count matches `rows/32 * cols/32`.
#[must_use]
pub fn untilize(tiles: &[Tile], rows: usize, cols: usize) -> Vec<f32> {
    assert!(rows.is_multiple_of(TILE_DIM) && cols.is_multiple_of(TILE_DIM));
    let tile_cols = cols / TILE_DIM;
    assert_eq!(tiles.len(), (rows / TILE_DIM) * tile_cols);
    let mut out = vec![0.0f32; rows * cols];
    for (i, tile) in tiles.iter().enumerate() {
        let tr = i / tile_cols;
        let tc = i % tile_cols;
        let data = tile.as_slice();
        for r in 0..TILE_DIM {
            let dst = (tr * TILE_DIM + r) * cols + tc * TILE_DIM;
            out[dst..dst + TILE_DIM].copy_from_slice(&data[r * TILE_DIM..(r + 1) * TILE_DIM]);
        }
    }
    out
}

/// Pack a flat vector of length `n` into `ceil(n / 1024)` tiles, padding the
/// tail with `pad`. This is the 1-D packing the N-body port uses: "organized
/// into tiles, where each tile holds 1024 elements".
#[must_use]
pub fn pack_vector(format: DataFormat, values: &[f32], pad: f32) -> Vec<Tile> {
    let mut tiles = Vec::with_capacity(values.len().div_ceil(TILE_ELEMS));
    for chunk in values.chunks(TILE_ELEMS) {
        let mut buf = [pad; TILE_ELEMS];
        buf[..chunk.len()].copy_from_slice(chunk);
        tiles.push(Tile::from_rowmajor(format, &buf));
    }
    tiles
}

/// Inverse of [`pack_vector`]: flatten tiles and truncate to `n` values.
#[must_use]
pub fn unpack_vector(tiles: &[Tile], n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(tiles.len() * TILE_ELEMS);
    for t in tiles {
        out.extend_from_slice(t.as_slice());
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    #[test]
    fn splat_and_get() {
        let t = Tile::splat(DataFormat::Float32, 3.25);
        assert_eq!(t.get(0, 0), 3.25);
        assert_eq!(t.get(31, 31), 3.25);
    }

    #[test]
    fn from_rowmajor_roundtrip() {
        let vals = ramp(TILE_ELEMS);
        let t = Tile::from_rowmajor(DataFormat::Float32, &vals);
        assert_eq!(t.as_slice()[..], vals[..]);
        assert_eq!(t.get(1, 0), 32.0);
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn from_rowmajor_wrong_len_panics() {
        let _ = Tile::from_rowmajor(DataFormat::Float32, &[0.0; 100]);
    }

    #[test]
    fn tilized_face_order() {
        let vals = ramp(TILE_ELEMS);
        let t = Tile::from_rowmajor(DataFormat::Float32, &vals);
        let tz = t.to_tilized();
        // First face element = matrix (0,0); second face starts at (0,16).
        assert_eq!(tz[0], 0.0);
        assert_eq!(tz[FACE_ELEMS], 16.0);
        // Third face starts at (16, 0) = 16*32.
        assert_eq!(tz[2 * FACE_ELEMS], 512.0);
        // Fourth face starts at (16,16).
        assert_eq!(tz[3 * FACE_ELEMS], 528.0);
    }

    #[test]
    fn tilized_roundtrip() {
        let vals = ramp(TILE_ELEMS);
        let t = Tile::from_rowmajor(DataFormat::Float32, &vals);
        let back = Tile::from_tilized(DataFormat::Float32, &t.to_tilized());
        assert_eq!(back.as_slice()[..], vals[..]);
    }

    #[test]
    fn tilize_untilize_identity() {
        let (rows, cols) = (64, 96);
        let vals = ramp(rows * cols);
        let tiles = tilize(DataFormat::Float32, &vals, rows, cols);
        assert_eq!(tiles.len(), 2 * 3);
        assert_eq!(untilize(&tiles, rows, cols), vals);
    }

    #[test]
    fn tilize_tile_ordering() {
        let (rows, cols) = (32, 64);
        let vals = ramp(rows * cols);
        let tiles = tilize(DataFormat::Float32, &vals, rows, cols);
        // Second tile covers cols 32..64 of row 0.
        assert_eq!(tiles[1].get(0, 0), 32.0);
    }

    #[test]
    fn bf16_tile_quantizes() {
        let t = Tile::splat(DataFormat::Float16b, 1.0 + 1.0 / 1024.0);
        // 1.0009765625 is not bf16-representable; snaps to 1.0.
        assert_eq!(t.get(0, 0), 1.0);
    }

    #[test]
    fn convert_changes_format_and_precision() {
        let t = Tile::splat(DataFormat::Float32, 1.0 + 1.0 / 1024.0);
        let b = t.convert(DataFormat::Float16b);
        assert_eq!(b.format(), DataFormat::Float16b);
        assert_eq!(b.get(5, 5), 1.0);
        assert_eq!(b.packed_bytes(), 2048);
    }

    #[test]
    fn pack_vector_pads_tail() {
        let vals = ramp(1500);
        let tiles = pack_vector(DataFormat::Float32, &vals, 0.0);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[1].as_slice()[1500 - 1024 - 1], vals[1500 - 1]);
        assert_eq!(tiles[1].as_slice()[1500 - 1024], 0.0, "tail is padded");
        assert_eq!(unpack_vector(&tiles, 1500), vals);
    }

    #[test]
    fn clone_is_shared_until_mutated() {
        let a = Tile::splat(DataFormat::Float32, 2.0);
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data), "clone must share storage");
        b.set(3, 4, 9.0);
        assert!(!Arc::ptr_eq(&a.data, &b.data), "mutation must un-share");
        assert_eq!(a.get(3, 4), 2.0, "older clone keeps its bits");
        assert_eq!(b.get(3, 4), 9.0);
        let c = a.deep_clone();
        assert!(!Arc::ptr_eq(&a.data, &c.data), "deep_clone never shares");
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn convert_fp32_to_fp32_shares() {
        let a = Tile::splat(DataFormat::Float32, 1.5);
        let b = a.convert(DataFormat::Float32);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn pack_vector_exact_multiple() {
        let vals = ramp(2048);
        let tiles = pack_vector(DataFormat::Float32, &vals, -1.0);
        assert_eq!(tiles.len(), 2);
        assert_eq!(unpack_vector(&tiles, 2048), vals);
    }
}
