//! Semaphores — TT-Metalium's second synchronization primitive.
//!
//! Besides circular buffers, kernels coordinate through L1 semaphores:
//! `CreateSemaphore` allocates a 32-bit counter per core, and kernels use
//! `noc_semaphore_set` / `noc_semaphore_inc` / `noc_semaphore_wait` to
//! implement barriers and producer tokens (real multi-core kernels use them
//! for multicast hand-shakes). The simulator backs each with a
//! mutex+condvar counter; waits carry the same deadlock watchdog as CBs.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// How long a blocked wait lasts before the simulator declares a deadlock.
pub const SEM_DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// One L1 semaphore (a 32-bit counter). Clones share the counter.
#[derive(Debug, Clone)]
pub struct Semaphore {
    inner: Arc<(Mutex<u32>, Condvar)>,
}

impl Semaphore {
    /// Semaphore initialized to `initial`.
    #[must_use]
    pub fn new(initial: u32) -> Self {
        Semaphore { inner: Arc::new((Mutex::new(initial), Condvar::new())) }
    }

    /// `noc_semaphore_set`: overwrite the counter.
    pub fn set(&self, value: u32) {
        let (lock, cvar) = &*self.inner;
        *lock.lock() = value;
        cvar.notify_all();
    }

    /// `noc_semaphore_inc`: add `delta` (wrapping, as the 32-bit counter
    /// does on hardware).
    pub fn inc(&self, delta: u32) {
        let (lock, cvar) = &*self.inner;
        let mut v = lock.lock();
        *v = v.wrapping_add(delta);
        cvar.notify_all();
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u32 {
        *self.inner.0.lock()
    }

    /// `noc_semaphore_wait`: block until the counter equals `target`.
    ///
    /// # Panics
    /// Panics after [`SEM_DEADLOCK_TIMEOUT`] without reaching the target.
    pub fn wait(&self, target: u32) {
        let (lock, cvar) = &*self.inner;
        let mut v = lock.lock();
        while *v != target {
            let timed_out = cvar.wait_for(&mut v, SEM_DEADLOCK_TIMEOUT).timed_out();
            assert!(!timed_out, "noc_semaphore_wait({target}) deadlocked at value {}", *v);
        }
    }

    /// Wait until the counter is at least `target` (the common token
    /// pattern).
    ///
    /// # Panics
    /// Panics on deadlock timeout.
    pub fn wait_min(&self, target: u32) {
        let (lock, cvar) = &*self.inner;
        let mut v = lock.lock();
        while *v < target {
            let timed_out = cvar.wait_for(&mut v, SEM_DEADLOCK_TIMEOUT).timed_out();
            assert!(!timed_out, "noc_semaphore_wait_min({target}) deadlocked at {}", *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_inc_value() {
        let s = Semaphore::new(0);
        assert_eq!(s.value(), 0);
        s.inc(3);
        assert_eq!(s.value(), 3);
        s.set(1);
        assert_eq!(s.value(), 1);
        s.inc(u32::MAX);
        assert_eq!(s.value(), 0, "wraps like the 32-bit hardware counter");
    }

    #[test]
    fn wait_blocks_until_target() {
        let s = Semaphore::new(0);
        let s2 = s.clone();
        let waiter = thread::spawn(move || {
            s2.wait(4);
            s2.value()
        });
        thread::sleep(Duration::from_millis(30));
        s.inc(2);
        thread::sleep(Duration::from_millis(10));
        assert!(!waiter.is_finished(), "must still be blocked at 2");
        s.inc(2);
        assert_eq!(waiter.join().unwrap(), 4);
    }

    #[test]
    fn producer_token_barrier() {
        // Four producers each post a token; a consumer proceeds at 4 —
        // the multicast-receiver handshake pattern.
        let s = Semaphore::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                let p = s.clone();
                scope.spawn(move || p.inc(1));
            }
            let c = s.clone();
            scope.spawn(move || c.wait_min(4)).join().unwrap();
        });
        assert_eq!(s.value(), 4);
    }
}
