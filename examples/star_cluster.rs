//! Domain scenario: structural evolution of a dense star cluster — the
//! workload class motivating the paper (dense stellar systems as factories
//! of gravitational-wave sources).
//!
//! Evolves a Plummer sphere for a fraction of a crossing time with the
//! device-offloaded Hermite integrator, tracking Lagrangian radii, energy
//! and the virial ratio, and cross-checks the trajectory against the CPU
//! mixed-precision reference.
//!
//! ```sh
//! cargo run --release --example star_cluster
//! ```

use nbody::diagnostics::{lagrangian_radius, total_energy, virial_ratio};
use nbody::ic::PlummerConfig;
use nbody::units::UnitSystem;
use tt_nbody::prelude::*;

fn main() {
    let n = 1024;
    let softening = 0.01;
    let units = UnitSystem::dense_cluster();
    let mut cluster = plummer(PlummerConfig { n, seed: 7, ..PlummerConfig::default() });
    let mut reference = cluster.clone();

    println!(
        "dense cluster: {n} bodies, unit mass {:.0} Msun, unit length {:.1} pc, \
         unit time {:.3} Myr",
        units.mass_msun,
        units.length_pc,
        units.time_unit_myr()
    );

    let device = create_device(0, DeviceConfig::default()).expect("device reset");
    let pipeline = DeviceForcePipeline::new(device, n, softening, 4).expect("pipeline");
    let device_integ = Hermite4::new(DeviceForceKernel::new(pipeline));
    let cpu_integ = Hermite4::new(ThreadedKernel::new(SimdKernel::new(softening), 4));

    let dt = 1.0 / 256.0;
    let segments = 4;
    let seg_t = 0.025;

    device_integ.initialize(&mut cluster);
    cpu_integ.initialize(&mut reference);
    println!("\n   t (Myr) |   r10%  |   r50%  |   r90%  |  Q=-T/W |     E");
    for seg in 0..=segments {
        if seg > 0 {
            let mut t = 0.0;
            while t < seg_t - 1e-12 {
                device_integ.step(&mut cluster, dt);
                cpu_integ.step(&mut reference, dt);
                t += dt;
            }
        }
        println!(
            "  {:>8.4} | {:>7.4} | {:>7.4} | {:>7.4} | {:>7.4} | {:>8.5}",
            units.to_myr(cluster.time),
            lagrangian_radius(&cluster, 0.1),
            lagrangian_radius(&cluster, 0.5),
            lagrangian_radius(&cluster, 0.9),
            virial_ratio(&cluster, softening),
            total_energy(&cluster, softening),
        );
    }

    // Device vs CPU trajectory agreement (same algorithm, same precision).
    let mut max_dev: f64 = 0.0;
    for i in 0..n {
        for k in 0..3 {
            max_dev = max_dev.max((cluster.pos[i][k] - reference.pos[i][k]).abs());
        }
    }
    println!("\nmax |device - cpu| position deviation after the run: {max_dev:.2e}");
    assert!(max_dev < 1e-3, "trajectories must stay consistent");
    println!("device and CPU mixed-precision trajectories agree.");
}
