//! Time-step selection.
//!
//! Production Hermite codes choose steps from the force and its derivative.
//! With only acceleration and jerk available (the quantities the device
//! computes), the first-order Aarseth criterion is dt = η |a| / |ȧ|; the
//! shared (global) step is the minimum over particles, which is what a
//! shared-timestep O(N²) code like the paper's benchmark uses.

use crate::particle::{ParticleSystem, Vec3};

fn norm(v: Vec3) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// Per-particle Aarseth-style step: η |a| / |ȧ| (clamped to `dt_max` and to
/// a floor of `1e-8` to survive pathological states).
///
/// # Panics
/// Panics unless `eta` and `dt_max` are positive.
#[must_use]
pub fn aarseth_timestep(acc: Vec3, jerk: Vec3, eta: f64, dt_max: f64) -> f64 {
    assert!(eta > 0.0 && dt_max > 0.0, "eta and dt_max must be positive");
    let a = norm(acc);
    let j = norm(jerk);
    if j == 0.0 {
        return dt_max;
    }
    (eta * a / j).clamp(1e-8, dt_max)
}

/// Shared (global) step: the minimum per-particle step over the system.
/// Requires `system.acc` / `system.jerk` to be current.
///
/// # Panics
/// Panics unless `eta` and `dt_max` are positive.
#[must_use]
pub fn shared_timestep(system: &ParticleSystem, eta: f64, dt_max: f64) -> f64 {
    system
        .acc
        .iter()
        .zip(&system.jerk)
        .map(|(a, j)| aarseth_timestep(*a, *j, eta, dt_max))
        .fold(dt_max, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{ForceKernel, ReferenceKernel};
    use crate::ic::{plummer, PlummerConfig};

    #[test]
    fn zero_jerk_gives_dt_max() {
        assert_eq!(aarseth_timestep([1.0, 0.0, 0.0], [0.0; 3], 0.01, 0.5), 0.5);
    }

    #[test]
    fn step_shrinks_with_jerk() {
        let fast = aarseth_timestep([1.0, 0.0, 0.0], [100.0, 0.0, 0.0], 0.02, 1.0);
        let slow = aarseth_timestep([1.0, 0.0, 0.0], [1.0, 0.0, 0.0], 0.02, 1.0);
        assert!(fast < slow);
        assert!((slow - 0.02).abs() < 1e-15);
        assert!((fast - 0.0002).abs() < 1e-15);
    }

    #[test]
    fn clamped_to_bounds() {
        assert_eq!(aarseth_timestep([1e-20, 0.0, 0.0], [1e20, 0.0, 0.0], 0.01, 1.0), 1e-8);
        assert_eq!(aarseth_timestep([1e20, 0.0, 0.0], [1e-20, 0.0, 0.0], 0.01, 0.25), 0.25);
    }

    #[test]
    fn shared_step_reasonable_for_cluster() {
        let mut s = plummer(PlummerConfig { n: 256, seed: 60, ..PlummerConfig::default() });
        let f = ReferenceKernel::new(0.01).compute(&s);
        s.set_forces(f.acc, f.jerk);
        let dt = shared_timestep(&s, 0.02, 1.0);
        // For a virialized cluster this lands well below the crossing time
        // but above the pathological floor.
        assert!(dt > 1e-6 && dt < 0.5, "shared dt = {dt}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_eta_panics() {
        let _ = aarseth_timestep([1.0, 0.0, 0.0], [1.0, 0.0, 0.0], 0.0, 1.0);
    }
}
