//! Full mixed-precision Hermite simulations with the device in the loop:
//! energy conservation, trajectory agreement with the CPU reference, and
//! the virtual-time bookkeeping.

use nbody::diagnostics::{angular_momentum, total_energy};
use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::{run_cpu_simulation, run_device_simulation, SimulationConfig};
use tensix::{Device, DeviceConfig};

fn config() -> SimulationConfig {
    SimulationConfig {
        eps: 0.03,
        cycles: 3,
        steps_per_cycle: 3,
        dt: 1.0 / 256.0,
        num_cores: 2,
        blocks: None,
    }
}

#[test]
fn device_simulation_paper_structure() {
    // cycles × steps mirrors the paper's "ten time cycles" structure.
    let mut sys = plummer(PlummerConfig { n: 256, seed: 21, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let out = run_device_simulation(device, &mut sys, config()).unwrap();
    assert_eq!(out.steps, 9);
    assert_eq!(out.kernel, "tenstorrent-wormhole");
    assert!(out.energy_error < 1e-4, "energy error {}", out.energy_error);
    let timing = out.timing.unwrap();
    assert_eq!(timing.evaluations, 10, "init + 9 steps");
    assert!(timing.device_seconds > 0.0 && timing.io_seconds > 0.0);
}

#[test]
fn device_and_cpu_trajectories_track() {
    let mk = || plummer(PlummerConfig { n: 200, seed: 22, ..PlummerConfig::default() });
    let cfg = config();
    let mut dev_sys = mk();
    let device = Device::new(0, DeviceConfig::default());
    run_device_simulation(device, &mut dev_sys, cfg).unwrap();
    let mut cpu_sys = mk();
    let _ = run_cpu_simulation(&mut cpu_sys, cfg, 3);

    let mut max_d: f64 = 0.0;
    for i in 0..dev_sys.len() {
        for k in 0..3 {
            max_d = max_d.max((dev_sys.pos[i][k] - cpu_sys.pos[i][k]).abs());
        }
    }
    assert!(max_d < 1e-5, "device vs cpu divergence {max_d}");
}

#[test]
fn conservation_laws_hold_through_offload() {
    let mut sys = plummer(PlummerConfig { n: 160, seed: 23, ..PlummerConfig::default() });
    let eps = 0.03;
    let l0 = angular_momentum(&sys);
    let e0 = total_energy(&sys, eps);
    let device = Device::new(0, DeviceConfig::default());
    let out = run_device_simulation(
        device,
        &mut sys,
        SimulationConfig {
            eps,
            cycles: 2,
            steps_per_cycle: 4,
            dt: 1.0 / 512.0,
            num_cores: 1,
            blocks: None,
        },
    )
    .unwrap();
    let l1 = angular_momentum(&sys);
    for k in 0..3 {
        assert!((l1[k] - l0[k]).abs() < 1e-5, "L[{k}] drift {} -> {}", l0[k], l1[k]);
    }
    assert!((out.initial_energy - e0).abs() < 1e-12);
    assert!(out.final_energy < 0.0, "cluster stays bound");
}

#[test]
fn longer_run_energy_stays_bounded() {
    let mut sys = plummer(PlummerConfig { n: 128, seed: 24, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let out = run_device_simulation(
        device,
        &mut sys,
        SimulationConfig {
            eps: 0.05,
            cycles: 5,
            steps_per_cycle: 8,
            dt: 1.0 / 256.0,
            num_cores: 1,
            blocks: None,
        },
    )
    .unwrap();
    assert_eq!(out.steps, 40);
    assert!(out.energy_error < 5e-4, "energy error {} over 40 steps", out.energy_error);
}
