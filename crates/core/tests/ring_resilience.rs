//! The backend-agnostic resilient driver on a multi-card ring.
//!
//! The contract under test: a resilient Hermite run on a two-card ring with
//! an injected mid-run card loss — absorbed by spare failover inside the
//! evaluation, or (spares exhausted) by the driver's reset → checkpoint
//! restore → replay path — is f64-bitwise identical to the unfaulted run of
//! the same seed, and to the same run on a single card.

use std::sync::Arc;

use proptest::prelude::*;

use nbody::ic::{plummer, PlummerConfig};
use nbody::particle::ParticleSystem;
use nbody_tt::{
    run_device_simulation_resilient, run_ring_simulation_resilient, RecoveryConfig,
    SimulationConfig,
};
use tensix::fault::FaultClass;
use tensix::{Device, DeviceConfig};

fn cfg() -> SimulationConfig {
    SimulationConfig {
        eps: 0.05,
        cycles: 2,
        steps_per_cycle: 3,
        dt: 1.0 / 256.0,
        num_cores: 1,
        blocks: None,
    }
}

fn devices(ids: &[usize]) -> Vec<Arc<Device>> {
    ids.iter().map(|id| Device::new(*id, DeviceConfig::default())).collect()
}

fn assert_states_bitwise(a: &ParticleSystem, b: &ParticleSystem) {
    for i in 0..a.len() {
        for k in 0..3 {
            assert_eq!(a.pos[i][k].to_bits(), b.pos[i][k].to_bits(), "pos[{i}][{k}]");
            assert_eq!(a.vel[i][k].to_bits(), b.vel[i][k].to_bits(), "vel[{i}][{k}]");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Wherever in the run the card dies (any launch event: init or any
    /// step), spare failover keeps the resilient ring run bitwise identical
    /// to the unfaulted one — no rollback, no replayed steps.
    #[test]
    fn ring_loss_with_spare_is_bitwise_invisible(seed in 200u64..204, event in 1u64..8) {
        let n = 768usize;
        let mk = || plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });

        let mut clean_sys = mk();
        let clean = run_ring_simulation_resilient(
            &devices(&[0, 1]),
            &[],
            &mut clean_sys,
            cfg(),
            RecoveryConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(clean.failovers, 0);
        prop_assert_eq!(clean.recoveries, 0);

        let devs = devices(&[0, 1]);
        devs[1].faults().schedule(FaultClass::DeviceLoss, event);
        let spares = devices(&[9]);
        let mut sys = mk();
        let out = run_ring_simulation_resilient(
            &devs,
            &spares,
            &mut sys,
            cfg(),
            RecoveryConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(out.failovers, 1, "spare absorbs the loss inside the evaluation");
        prop_assert_eq!(out.recoveries, 0, "failover never costs a rollback");
        prop_assert_eq!(out.steps_replayed, 0);
        prop_assert!(!devs[1].is_alive());

        for i in 0..n {
            for k in 0..3 {
                prop_assert_eq!(sys.pos[i][k].to_bits(), clean_sys.pos[i][k].to_bits());
                prop_assert_eq!(sys.vel[i][k].to_bits(), clean_sys.vel[i][k].to_bits());
            }
        }
        prop_assert_eq!(
            out.outcome.final_energy.to_bits(),
            clean.outcome.final_energy.to_bits()
        );
        prop_assert_eq!(
            out.outcome.energy_error.to_bits(),
            clean.outcome.energy_error.to_bits()
        );
    }
}

#[test]
fn exhausted_spares_fall_back_to_checkpoint_recovery() {
    let n = 512usize;
    let mk = || plummer(PlummerConfig { n, seed: 210, ..PlummerConfig::default() });

    let mut clean_sys = mk();
    let clean = run_ring_simulation_resilient(
        &devices(&[0, 1]),
        &[],
        &mut clean_sys,
        cfg(),
        RecoveryConfig::default(),
    )
    .unwrap();

    // No spare pool: the loss surfaces to the driver, which resets the dead
    // card in place, restores the checkpoint, and replays — the same
    // machinery the single-card path uses, through the same trait seam.
    let devs = devices(&[0, 1]);
    devs[1].faults().schedule(FaultClass::DeviceLoss, 4);
    let mut sys = mk();
    let out = run_ring_simulation_resilient(&devs, &[], &mut sys, cfg(), RecoveryConfig::default())
        .unwrap();
    assert_eq!(out.failovers, 0, "nothing to promote");
    assert_eq!(out.recoveries, 1, "driver reset the dead card and replayed");
    assert!(out.steps_replayed > 0);
    assert!(devs[1].is_alive(), "recovery resets the card back into service");

    assert_states_bitwise(&sys, &clean_sys);
    assert_eq!(out.outcome.final_energy.to_bits(), clean.outcome.final_energy.to_bits());
}

#[test]
fn ring_and_single_card_resilient_runs_agree_bitwise() {
    // Two cards × one core vs one card × two cores: the tile split is the
    // same, so the generic driver must produce identical FP64 trajectories
    // through either backend.
    let n = 512usize;
    let mk = || plummer(PlummerConfig { n, seed: 211, ..PlummerConfig::default() });

    let mut ring_sys = mk();
    let ring = run_ring_simulation_resilient(
        &devices(&[0, 1]),
        &[],
        &mut ring_sys,
        cfg(),
        RecoveryConfig::default(),
    )
    .unwrap();
    assert_eq!(ring.outcome.kernel, "tenstorrent-wormhole-ring");

    let single_dev = Device::new(0, DeviceConfig::default());
    let mut single_sys = mk();
    let single = run_device_simulation_resilient(
        &single_dev,
        &mut single_sys,
        SimulationConfig { num_cores: 2, ..cfg() },
        RecoveryConfig::default(),
    )
    .unwrap();
    assert_eq!(single.outcome.kernel, "tenstorrent-wormhole");

    assert_states_bitwise(&ring_sys, &single_sys);
    assert_eq!(ring.outcome.final_energy.to_bits(), single.outcome.final_energy.to_bits());
}
