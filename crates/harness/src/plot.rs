//! ASCII rendering of the paper's figures.
//!
//! The harness reproduces figure *data*; these renderers make the shape
//! visible in a terminal — histograms with counts per bin (Figs. 3 and 5)
//! and multi-trace time series (Fig. 4).

use tt_telemetry::sample::SampleSeries;
use tt_telemetry::stats::{max, mean, min, std_dev, Histogram};

/// Render a histogram with a header carrying mean ± σ (the red dashed line
/// of Figs. 3/5 is the mean).
#[must_use]
pub fn render_histogram(title: &str, xs: &[f64], bins: usize, unit: &str) -> String {
    assert!(!xs.is_empty(), "no data to plot");
    let h = Histogram::auto(xs, bins);
    let m = mean(xs);
    let sd = std_dev(xs);
    let mut out = format!(
        "{title}\n  n = {}, mean = {m:.2} {unit}, std = {sd:.2} {unit}, range = [{:.2}, {:.2}]\n",
        xs.len(),
        min(xs),
        max(xs),
    );
    let peak = h.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in h.counts.iter().enumerate() {
        let bar_len = (c as usize * 40).div_ceil(peak as usize);
        let center = h.bin_center(i);
        let marker = {
            let width = (h.hi - h.lo) / h.counts.len() as f64;
            if (center - m).abs() <= width / 2.0 {
                " <- mean"
            } else {
                ""
            }
        };
        out.push_str(&format!(
            "  {center:>10.2} | {}{} {c}{marker}\n",
            "#".repeat(bar_len),
            if c > 0 && bar_len == 0 { "#" } else { "" },
        ));
    }
    out
}

/// Render multiple power traces over a common time axis, one glyph per
/// series ('0'–'9'), with vertical markers at `events` (Fig. 4's simulation
/// start/end lines).
#[must_use]
pub fn render_timeseries(
    title: &str,
    series: &[SampleSeries],
    events: &[f64],
    width: usize,
    height: usize,
) -> String {
    assert!(!series.is_empty(), "no series to plot");
    assert!(width >= 10 && height >= 4, "canvas too small");
    let t_max = series
        .iter()
        .filter_map(|s| s.samples.last().map(|p| p.t))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let w_max = series.iter().map(SampleSeries::peak).fold(10.0f64, f64::max) * 1.05;

    let mut canvas = vec![vec![' '; width]; height];
    // Event markers first so traces draw over them.
    for &e in events {
        let col = ((e / t_max) * (width - 1) as f64) as usize;
        for row in canvas.iter_mut() {
            row[col.min(width - 1)] = '|';
        }
    }
    for (si, s) in series.iter().enumerate() {
        let glyph = char::from_digit((si % 10) as u32, 10).unwrap_or('*');
        for p in &s.samples {
            let col = ((p.t / t_max) * (width - 1) as f64) as usize;
            let row = height - 1 - ((p.watts / w_max) * (height - 1) as f64) as usize;
            canvas[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let mut out = format!("{title}\n  y: 0..{w_max:.0} W, x: 0..{t_max:.0} s\n");
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{w_max:>6.0}")
        } else if i == height - 1 {
            format!("{:>6.0}", 0.0)
        } else {
            "      ".to_string()
        };
        out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str("        legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{} = {}  ", si % 10, s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_render_contains_stats() {
        let xs: Vec<f64> = (0..50).map(|i| 300.0 + (i % 7) as f64 * 0.1).collect();
        let s = render_histogram("Fig 3(a)", &xs, 8, "s");
        assert!(s.contains("Fig 3(a)"));
        assert!(s.contains("n = 50"));
        assert!(s.contains("mean = 300.29"));
        assert!(s.contains("<- mean"));
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_histogram_panics() {
        let _ = render_histogram("x", &[], 4, "s");
    }

    #[test]
    fn timeseries_renders_all_series() {
        let mut a = SampleSeries::new("device0");
        let mut b = SampleSeries::new("device3");
        for i in 0..100 {
            a.push(i as f64, 10.0);
            b.push(i as f64 + 0.1, 30.0);
        }
        let s = render_timeseries("Fig 4", &[a, b], &[20.0, 80.0], 60, 10);
        assert!(s.contains("Fig 4"));
        assert!(s.contains('0') && s.contains('1'));
        assert!(s.contains('|'), "event markers");
        assert!(s.contains("device3"));
    }
}
