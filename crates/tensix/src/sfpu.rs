//! SFPU — the wide SIMD engine of a Tensix core.
//!
//! The SFPU executes general-purpose vector math on dst register tiles:
//! element-wise unary ops (including the transcendentals the force kernel
//! needs: `rsqrt`, `square`, reciprocal), element-wise binary ops between two
//! dst tiles (`sub_binary_tile` and friends from the paper), and fused
//! multiply-add for accumulation. All arithmetic is IEEE `f32`, the highest
//! precision the Wormhole supports.
//!
//! `rsqrt` ships in two variants mirroring TT-Metalium: a *precise* one and a
//! *fast* approximate one (hardware Newton–Raphson refinement of an initial
//! guess), so accuracy studies can quantify the trade-off.

use crate::cost::ComputeCosts;
use crate::tile::{Tile, TILE_ELEMS};

/// Element-wise unary SFPU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// x²
    Square,
    /// √x
    Sqrt,
    /// 1/√x (precise variant)
    Rsqrt,
    /// 1/√x (fast approximate variant, ~1e-6 relative error)
    RsqrtFast,
    /// 1/x
    Recip,
    /// eˣ
    Exp,
    /// ln x
    Log,
    /// |x|
    Abs,
    /// −x
    Neg,
    /// x · 2ᵏ handled via [`apply_unary_scaled`]; plain copy here.
    Identity,
}

/// Element-wise binary SFPU operations between two dst tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a · b
    Mul,
    /// min(a, b)
    Min,
    /// max(a, b)
    Max,
}

/// Fast inverse square root as implemented by SFPU microcode: bit-trick
/// initial guess + two Newton–Raphson iterations.
#[must_use]
pub fn rsqrt_fast(x: f32) -> f32 {
    if x <= 0.0 {
        return if x == 0.0 { f32::INFINITY } else { f32::NAN };
    }
    let i = 0x5f37_59df_u32.wrapping_sub(x.to_bits() >> 1);
    let mut y = f32::from_bits(i);
    let half = 0.5 * x;
    y *= 1.5 - half * y * y;
    y *= 1.5 - half * y * y;
    y
}

/// Scalar semantics of a unary op (f32, device precision).
#[must_use]
pub fn unary_scalar(op: UnaryOp, x: f32) -> f32 {
    match op {
        UnaryOp::Square => x * x,
        UnaryOp::Sqrt => x.sqrt(),
        UnaryOp::Rsqrt => 1.0 / x.sqrt(),
        UnaryOp::RsqrtFast => rsqrt_fast(x),
        UnaryOp::Recip => 1.0 / x,
        UnaryOp::Exp => x.exp(),
        UnaryOp::Log => x.ln(),
        UnaryOp::Abs => x.abs(),
        UnaryOp::Neg => -x,
        UnaryOp::Identity => x,
    }
}

/// Scalar semantics of a binary op (f32, device precision).
#[must_use]
pub fn binary_scalar(op: BinaryOp, a: f32, b: f32) -> f32 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Min => a.min(b),
        BinaryOp::Max => a.max(b),
    }
}

/// One specialized, autovectorizer-friendly pass over all lanes: the unary
/// op is dispatched once per tile (monomorphized per closure) instead of a
/// per-element `match`.
#[inline]
fn map_lanes(lanes: &mut [f32; TILE_ELEMS], f: impl Fn(f32) -> f32) {
    for lane in lanes.iter_mut() {
        *lane = f(*lane);
    }
}

/// Like [`map_lanes`] but fusing the `* scale + bias` epilogue of
/// [`apply_unary_scaled`] into the same pass.
#[inline]
fn map_lanes_scaled(lanes: &mut [f32; TILE_ELEMS], scale: f32, bias: f32, f: impl Fn(f32) -> f32) {
    for lane in lanes.iter_mut() {
        *lane = f(*lane) * scale + bias;
    }
}

/// Apply a unary op in place to every lane of a dst tile. Returns the cycle
/// cost. Bitwise-identical to [`reference::apply_unary`].
pub fn apply_unary(costs: &ComputeCosts, op: UnaryOp, tile: &mut Tile) -> u64 {
    let lanes = tile.as_mut_slice();
    match op {
        UnaryOp::Square => map_lanes(lanes, |x| x * x),
        UnaryOp::Sqrt => map_lanes(lanes, f32::sqrt),
        UnaryOp::Rsqrt => map_lanes(lanes, |x| 1.0 / x.sqrt()),
        UnaryOp::RsqrtFast => map_lanes(lanes, rsqrt_fast),
        UnaryOp::Recip => map_lanes(lanes, |x| 1.0 / x),
        UnaryOp::Exp => map_lanes(lanes, f32::exp),
        UnaryOp::Log => map_lanes(lanes, f32::ln),
        UnaryOp::Abs => map_lanes(lanes, f32::abs),
        UnaryOp::Neg => map_lanes(lanes, |x| -x),
        UnaryOp::Identity => {}
    }
    costs.issue_overhead + unary_cost(costs, op)
}

/// Apply `tile[i] = op(tile[i]) * scale + bias` in one pass (used for
/// softening and unit conversions without extra tile traffic).
/// Bitwise-identical to [`reference::apply_unary_scaled`].
pub fn apply_unary_scaled(
    costs: &ComputeCosts,
    op: UnaryOp,
    tile: &mut Tile,
    scale: f32,
    bias: f32,
) -> u64 {
    let lanes = tile.as_mut_slice();
    match op {
        UnaryOp::Square => map_lanes_scaled(lanes, scale, bias, |x| x * x),
        UnaryOp::Sqrt => map_lanes_scaled(lanes, scale, bias, f32::sqrt),
        UnaryOp::Rsqrt => map_lanes_scaled(lanes, scale, bias, |x| 1.0 / x.sqrt()),
        UnaryOp::RsqrtFast => map_lanes_scaled(lanes, scale, bias, rsqrt_fast),
        UnaryOp::Recip => map_lanes_scaled(lanes, scale, bias, |x| 1.0 / x),
        UnaryOp::Exp => map_lanes_scaled(lanes, scale, bias, f32::exp),
        UnaryOp::Log => map_lanes_scaled(lanes, scale, bias, f32::ln),
        UnaryOp::Abs => map_lanes_scaled(lanes, scale, bias, f32::abs),
        UnaryOp::Neg => map_lanes_scaled(lanes, scale, bias, |x| -x),
        UnaryOp::Identity => map_lanes_scaled(lanes, scale, bias, |x| x),
    }
    costs.issue_overhead + unary_cost(costs, op) + costs.sfpu_mad
}

/// Apply a binary op lane-wise: `a[i] = op(a[i], b[i])`. Returns cycle cost.
/// Bitwise-identical to [`reference::apply_binary`].
pub fn apply_binary(costs: &ComputeCosts, op: BinaryOp, a: &mut Tile, b: &Tile) -> u64 {
    let vb = b.as_slice();
    let va = a.as_mut_slice();
    macro_rules! lanes {
        ($f:expr) => {
            for (x, y) in va.iter_mut().zip(vb.iter()) {
                *x = $f(*x, *y);
            }
        };
    }
    match op {
        BinaryOp::Add => lanes!(|x: f32, y: f32| x + y),
        BinaryOp::Sub => lanes!(|x: f32, y: f32| x - y),
        BinaryOp::Mul => lanes!(|x: f32, y: f32| x * y),
        BinaryOp::Min => lanes!(f32::min),
        BinaryOp::Max => lanes!(f32::max),
    }
    costs.issue_overhead + costs.sfpu_simple
}

/// Fused multiply-add: `acc[i] += a[i] * b[i]`. Returns cycle cost.
/// Bitwise-identical to [`reference::apply_mad`].
pub fn apply_mad(costs: &ComputeCosts, a: &Tile, b: &Tile, acc: &mut Tile) -> u64 {
    let (va, vb) = (a.as_slice(), b.as_slice());
    // Hoist the COW borrow out of the lane loop: `as_mut_slice` re-checks
    // Arc uniqueness on every call, which the old per-element indexing paid
    // 1024 times per tile.
    let vo = acc.as_mut_slice();
    for (o, (x, y)) in vo.iter_mut().zip(va.iter().zip(vb.iter())) {
        *o = x.mul_add(*y, *o);
    }
    costs.issue_overhead + costs.sfpu_mad
}

/// Fill every lane with a constant (`fill_tile` LLK).
pub fn apply_fill(costs: &ComputeCosts, tile: &mut Tile, value: f32) -> u64 {
    tile.as_mut_slice().fill(value);
    costs.issue_overhead + costs.sfpu_simple
}

/// Pre-vectorization scalar implementations, kept as the bitwise-identity
/// oracle for property tests and as the "before" side of the tile-op
/// benchmarks. Not part of the simulator's public API.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Original per-element-`match` form of [`super::apply_unary`].
    pub fn apply_unary(costs: &ComputeCosts, op: UnaryOp, tile: &mut Tile) -> u64 {
        for lane in tile.as_mut_slice().iter_mut() {
            *lane = unary_scalar(op, *lane);
        }
        costs.issue_overhead + unary_cost(costs, op)
    }

    /// Original per-element-`match` form of [`super::apply_unary_scaled`].
    pub fn apply_unary_scaled(
        costs: &ComputeCosts,
        op: UnaryOp,
        tile: &mut Tile,
        scale: f32,
        bias: f32,
    ) -> u64 {
        for lane in tile.as_mut_slice().iter_mut() {
            *lane = unary_scalar(op, *lane) * scale + bias;
        }
        costs.issue_overhead + unary_cost(costs, op) + costs.sfpu_mad
    }

    /// Original per-element-`match` form of [`super::apply_binary`].
    pub fn apply_binary(costs: &ComputeCosts, op: BinaryOp, a: &mut Tile, b: &Tile) -> u64 {
        let bs = b.as_slice();
        for (x, y) in a.as_mut_slice().iter_mut().zip(bs.iter()) {
            *x = binary_scalar(op, *x, *y);
        }
        costs.issue_overhead + costs.sfpu_simple
    }

    /// Original form of [`super::apply_mad`], including the per-element
    /// `as_mut_slice` re-borrow it used to pay.
    pub fn apply_mad(costs: &ComputeCosts, a: &Tile, b: &Tile, acc: &mut Tile) -> u64 {
        let (va, vb) = (a.as_slice(), b.as_slice());
        for i in 0..TILE_ELEMS {
            let out = &mut acc.as_mut_slice()[i];
            *out = va[i].mul_add(vb[i], *out);
        }
        costs.issue_overhead + costs.sfpu_mad
    }
}

/// Cycle cost of a unary op per tile.
#[must_use]
pub fn unary_cost(costs: &ComputeCosts, op: UnaryOp) -> u64 {
    match op {
        UnaryOp::Square | UnaryOp::Abs | UnaryOp::Neg | UnaryOp::Identity => costs.sfpu_simple,
        UnaryOp::RsqrtFast => costs.sfpu_transcendental / 2,
        UnaryOp::Sqrt | UnaryOp::Rsqrt | UnaryOp::Recip | UnaryOp::Exp | UnaryOp::Log => {
            costs.sfpu_transcendental
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataFormat;

    fn costs() -> ComputeCosts {
        ComputeCosts::default()
    }

    fn ramp_tile() -> Tile {
        let vals: Vec<f32> = (1..=TILE_ELEMS).map(|i| i as f32).collect();
        Tile::from_rowmajor(DataFormat::Float32, &vals)
    }

    #[test]
    fn square_matches_scalar() {
        let mut t = ramp_tile();
        let cycles = apply_unary(&costs(), UnaryOp::Square, &mut t);
        assert_eq!(t.get(0, 2), 9.0);
        assert_eq!(cycles, 4 + 32);
    }

    #[test]
    fn rsqrt_precise_matches_f32() {
        let mut t = Tile::splat(DataFormat::Float32, 4.0);
        apply_unary(&costs(), UnaryOp::Rsqrt, &mut t);
        assert_eq!(t.get(0, 0), 0.5);
    }

    #[test]
    fn rsqrt_fast_within_1e5_relative() {
        let mut x = 1e-6f32;
        while x < 1e12 {
            let approx = rsqrt_fast(x);
            let exact = 1.0 / x.sqrt();
            let rel = ((approx - exact) / exact).abs();
            assert!(rel < 1e-5, "rel {rel} at {x}");
            x *= 9.7;
        }
    }

    #[test]
    fn rsqrt_fast_edge_cases() {
        assert_eq!(rsqrt_fast(0.0), f32::INFINITY);
        assert!(rsqrt_fast(-1.0).is_nan());
    }

    #[test]
    fn transcendental_costs_more() {
        let c = costs();
        let mut t = Tile::splat(DataFormat::Float32, 2.0);
        let simple = apply_unary(&c, UnaryOp::Square, &mut t);
        let tr = apply_unary(&c, UnaryOp::Rsqrt, &mut t);
        assert!(tr > simple);
        // Fast rsqrt is cheaper than precise.
        let fast = apply_unary(&c, UnaryOp::RsqrtFast, &mut t);
        assert!(fast < tr);
    }

    #[test]
    fn binary_sub_is_the_paper_sub_binary_tile() {
        let mut a = Tile::splat(DataFormat::Float32, 5.0);
        let b = Tile::splat(DataFormat::Float32, 2.0);
        apply_binary(&costs(), BinaryOp::Sub, &mut a, &b);
        assert_eq!(a.get(3, 3), 3.0);
    }

    #[test]
    fn binary_ops_all_lanes() {
        let mut a = ramp_tile();
        let b = ramp_tile();
        apply_binary(&costs(), BinaryOp::Mul, &mut a, &b);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 3), 16.0);
        let mut mn = ramp_tile();
        apply_binary(&costs(), BinaryOp::Min, &mut mn, &Tile::splat(DataFormat::Float32, 10.0));
        assert_eq!(mn.get(0, 0), 1.0);
        assert_eq!(mn.get(31, 31), 10.0);
    }

    #[test]
    fn mad_accumulates() {
        let a = Tile::splat(DataFormat::Float32, 2.0);
        let b = Tile::splat(DataFormat::Float32, 3.0);
        let mut acc = Tile::splat(DataFormat::Float32, 1.0);
        apply_mad(&costs(), &a, &b, &mut acc);
        assert_eq!(acc.get(0, 0), 7.0);
        apply_mad(&costs(), &a, &b, &mut acc);
        assert_eq!(acc.get(5, 5), 13.0);
    }

    #[test]
    fn unary_scaled_fuses() {
        let mut t = Tile::splat(DataFormat::Float32, 3.0);
        apply_unary_scaled(&costs(), UnaryOp::Square, &mut t, 2.0, 1.0);
        assert_eq!(t.get(0, 0), 19.0);
    }

    #[test]
    fn fill_sets_all_lanes() {
        let mut t = ramp_tile();
        apply_fill(&costs(), &mut t, -4.25);
        assert!(t.as_slice().iter().all(|v| *v == -4.25));
    }

    #[test]
    fn exp_log_inverse() {
        let mut t = Tile::splat(DataFormat::Float32, 2.5);
        apply_unary(&costs(), UnaryOp::Log, &mut t);
        apply_unary(&costs(), UnaryOp::Exp, &mut t);
        assert!((t.get(0, 0) - 2.5).abs() < 1e-5);
    }
}
