//! End-to-end force correctness: the full stack (tilize → DRAM →
//! read/compute/write kernels over circular buffers → untilize) against the
//! FP64 golden reference, at the paper's §3 tolerances.

use std::sync::Arc;

use nbody::accuracy::{compare_forces, ACC_TOLERANCE, JERK_TOLERANCE};
use nbody::force::{ForceKernel, ReferenceKernel, SimdKernel};
use nbody::ic::{
    plummer, two_cluster_merger, uniform_sphere, PlummerConfig, TwoClusterConfig, UniformConfig,
};
use nbody_tt::DeviceForcePipeline;
use tensix::{Device, DeviceConfig};

fn device() -> Arc<Device> {
    Device::new(0, DeviceConfig::default())
}

#[test]
fn plummer_various_sizes_meet_paper_tolerances() {
    for (n, cores) in [(128usize, 1usize), (500, 1), (1024, 1), (1500, 2)] {
        let sys = plummer(PlummerConfig { n, seed: n as u64, ..PlummerConfig::default() });
        let eps = 0.01;
        let pipeline = DeviceForcePipeline::new(device(), n, eps, cores).unwrap();
        let dev = pipeline.evaluate(&sys).unwrap();
        let golden = ReferenceKernel::new(eps).compute(&sys);
        let cmp = compare_forces(&golden, &dev);
        assert!(
            cmp.max_acc_error <= ACC_TOLERANCE,
            "N={n}: acc error {:.3e} exceeds paper tolerance",
            cmp.max_acc_error
        );
        assert!(
            cmp.max_jerk_error <= JERK_TOLERANCE,
            "N={n}: jerk error {:.3e} exceeds paper tolerance",
            cmp.max_jerk_error
        );
    }
}

#[test]
fn device_matches_cpu_simd_kernel_closely() {
    // Same FP32 precision, so agreement should be tighter than vs FP64.
    let n = 768;
    let sys = plummer(PlummerConfig { n, seed: 9, ..PlummerConfig::default() });
    let eps = 0.02;
    let pipeline = DeviceForcePipeline::new(device(), n, eps, 1).unwrap();
    let dev = pipeline.evaluate(&sys).unwrap();
    let simd = SimdKernel::new(eps).compute(&sys);
    let golden = ReferenceKernel::new(eps).compute(&sys);
    let dev_err = compare_forces(&golden, &dev).max_acc_error;
    let simd_err = compare_forces(&golden, &simd).max_acc_error;
    assert!(
        dev_err < 10.0 * simd_err.max(1e-7),
        "device error {dev_err:.2e} should be commensurate with SIMD f32 error {simd_err:.2e}"
    );
}

#[test]
fn non_equilibrium_workloads_validate() {
    let eps = 0.02;
    let merger = two_cluster_merger(TwoClusterConfig { n1: 300, n2: 212, ..Default::default() });
    let hot =
        uniform_sphere(UniformConfig { n: 400, seed: 5, virial_ratio: 1.5, ..Default::default() });
    for (label, sys) in [("merger", merger), ("hot-sphere", hot)] {
        let pipeline = DeviceForcePipeline::new(device(), sys.len(), eps, 1).unwrap();
        let dev = pipeline.evaluate(&sys).unwrap();
        let golden = ReferenceKernel::new(eps).compute(&sys);
        let cmp = compare_forces(&golden, &dev);
        assert!(
            cmp.passes(),
            "{label}: acc {:.2e} jerk {:.2e}",
            cmp.max_acc_error,
            cmp.max_jerk_error
        );
    }
}

#[test]
fn momentum_conserved_by_device_forces() {
    let n = 640;
    let sys = plummer(PlummerConfig { n, seed: 77, ..PlummerConfig::default() });
    let pipeline = DeviceForcePipeline::new(device(), n, 0.01, 1).unwrap();
    let f = pipeline.evaluate(&sys).unwrap();
    let typical: f64 =
        f.acc.iter().map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt()).sum::<f64>()
            / n as f64;
    for c in 0..3 {
        let p: f64 = sys.mass.iter().zip(&f.acc).map(|(m, a)| m * a[c]).sum();
        assert!(
            p.abs() / typical < 1e-4,
            "net momentum flux component {c}: {p:.3e} (typical acc {typical:.3e})"
        );
    }
}

#[test]
fn repeated_evaluations_are_deterministic() {
    let n = 256;
    let sys = plummer(PlummerConfig { n, seed: 3, ..PlummerConfig::default() });
    let pipeline = DeviceForcePipeline::new(device(), n, 0.01, 1).unwrap();
    let a = pipeline.evaluate(&sys).unwrap();
    let b = pipeline.evaluate(&sys).unwrap();
    assert_eq!(a.acc, b.acc, "device evaluation must be bit-deterministic");
    assert_eq!(a.jerk, b.jerk);
    assert_eq!(pipeline.timing().evaluations, 2);
}

#[test]
fn core_count_does_not_change_results() {
    let n = 2048;
    let sys = plummer(PlummerConfig { n, seed: 4, ..PlummerConfig::default() });
    let one = DeviceForcePipeline::new(device(), n, 0.01, 1).unwrap().evaluate(&sys).unwrap();
    let two = DeviceForcePipeline::new(device(), n, 0.01, 2).unwrap().evaluate(&sys).unwrap();
    assert_eq!(one.acc, two.acc, "work distribution must not affect values");
    assert_eq!(one.jerk, two.jerk);
}
