//! # nbody-tt — the paper's contribution
//!
//! The gravitational force + jerk kernel of a direct N-body code, ported to
//! the Tenstorrent Wormhole through the TT-Metalium programming model:
//! Fig.-2 tile [`layout`], the read/compute/write [`kernels`], the
//! [`pipeline`] that assembles and drives them, and the calibrated
//! [`perf_model`] that extrapolates to the paper-scale configuration
//! (N = 102 400, ten cycles). [`validate`] reproduces the paper's §3
//! correctness methodology; [`simulation`] runs the full mixed-precision
//! Hermite loop with the device in the loop.

#![warn(missing_docs)]

pub mod broadcast;
pub mod evaluator;
pub mod kernels;
pub mod layout;
pub mod multi_device;
pub mod perf_model;
pub mod pipeline;
pub mod simulation;
pub mod tree;
pub mod validate;

pub use broadcast::BroadcastForcePipeline;
pub use evaluator::{
    ActiveSet, CpuForceEvaluator, EvaluatorKernel, ForceEvaluator, SingleCardEvaluator,
};
pub use layout::{split_tiles_to_cores, tilize_particles, HostArrays, TiledParticles};
pub use multi_device::{MultiDevicePipeline, MultiDeviceTiming};
pub use perf_model::{
    arch_run, paper_run, HostCpuModel, RunModel, WormholePerfModel, CPU_EFF_CYCLES_PER_PAIR,
    DEVICE_CYCLES_PER_PAIR, PAPER_CYCLES, PAPER_N, STEPS_PER_CYCLE,
};
pub use pipeline::{
    DeviceForceKernel, DeviceForcePipeline, ForceKernelKind, PipelineTiming, RetryPolicy,
};
pub use simulation::{
    latest_checkpoint, read_block_checkpoint, read_checkpoint, resume_simulation_resilient,
    run_block_simulation, run_block_simulation_resilient, run_cpu_block_simulation,
    run_cpu_simulation, run_device_block_simulation_resilient, run_device_simulation,
    run_device_simulation_resilient, run_device_simulation_resilient_kernel,
    run_ring_simulation_resilient, run_ring_simulation_resilient_kernel, run_simulation,
    run_simulation_resilient, write_block_checkpoint, write_checkpoint, BlockCheckpoint,
    BlockOutcome, BlockResilientOutcome, BlockScheduler, BlockStepConfig, RecoveryConfig,
    ResilientOutcome, SimulationConfig, SimulationOutcome, SpillConfig,
};
pub use tree::{run_tree_simulation, TreeConfig, TreeForceEvaluator};
pub use validate::{validate_system, validation_suite, ValidationRow};
