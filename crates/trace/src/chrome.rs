//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! One track (pid 0, one tid) per `core × RISC role`; host events get
//! their own track. Timestamps are microseconds: at the simulator's
//! 1 GHz virtual clock one cycle is exactly 1 ns, so `ts_us =
//! cycles / 1000` and the exporter prints it with three decimals —
//! exact, no float rounding.

use crate::event::{EventKind, RiscRole, TraceEvent, HOST_CORE};
use crate::json::{self, JsonValue};

/// Chrome-trace thread id for a `(core, role)` track. Host events map to
/// tid 0; device tracks are `core * 4 + track_index + 1`.
#[must_use]
pub fn track_tid(core: u32, role: RiscRole) -> u64 {
    if core == HOST_CORE {
        0
    } else {
        u64::from(core) * 4 + u64::from(role.track_index()) + 1
    }
}

/// Human-readable track name for a `(core, role)` track.
#[must_use]
pub fn track_name(core: u32, role: RiscRole) -> String {
    if core == HOST_CORE {
        "host".to_string()
    } else {
        format!("core {core} {}", role.label())
    }
}

fn us(cycles: u64) -> String {
    format!("{}.{:03}", cycles / 1000, cycles % 1000)
}

fn args_json(args: &[(String, u64)]) -> String {
    let body: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{v}", json::escape(k))).collect();
    format!("{{{}}}", body.join(","))
}

/// Serialize exported events (see [`crate::MemorySink::export`]) to a
/// Chrome `trace_event` JSON document.
#[must_use]
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 16);

    // Thread-name metadata, one per distinct track, in tid order.
    let mut tracks: Vec<(u64, String)> =
        events.iter().map(|e| (track_tid(e.core, e.role), track_name(e.core, e.role))).collect();
    tracks.sort();
    tracks.dedup();
    for (tid, name) in &tracks {
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(name)
        ));
    }

    for ev in events {
        let tid = track_tid(ev.core, ev.role);
        let name = json::escape(&ev.name);
        let ts = us(ev.ts);
        let line = match ev.kind {
            EventKind::SpanBegin => format!(
                "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\
                 \"args\":{}}}",
                args_json(&ev.args)
            ),
            EventKind::SpanEnd => {
                format!("{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\"}}")
            }
            EventKind::Complete { dur } => format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\
                 \"name\":\"{name}\",\"args\":{}}}",
                us(dur),
                args_json(&ev.args)
            ),
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"{name}\",\"args\":{}}}",
                args_json(&ev.args)
            ),
            EventKind::Counter { value } => format!(
                "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\
                 \"args\":{{\"value\":{value}}}}}"
            ),
        };
        lines.push(line);
    }

    format!("{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n", lines.join(",\n"))
}

/// One event parsed back from a Chrome-trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase character (`B`, `E`, `X`, `i`, `C`, `M`, …).
    pub ph: String,
    /// Event name.
    pub name: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (`X` events only).
    pub dur: Option<f64>,
    /// Process id.
    pub pid: i64,
    /// Thread id (the track).
    pub tid: i64,
}

/// Parse a Chrome-trace JSON document back into its event list.
///
/// # Errors
///
/// Returns a message if the document is not valid JSON or lacks the
/// `traceEvents` array.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field_str = |k: &str| {
            ev.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: missing string field '{k}'"))
        };
        let field_num = |k: &str| {
            ev.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric field '{k}'"))
        };
        let ph = field_str("ph")?;
        let ts = if ph == "M" { 0.0 } else { field_num("ts")? };
        out.push(ChromeEvent {
            ph,
            name: field_str("name")?,
            ts,
            dur: ev.get("dur").and_then(JsonValue::as_f64),
            pid: field_num("pid")? as i64,
            tid: field_num("tid")? as i64,
        });
    }
    Ok(out)
}

/// Check that within every `(pid, tid)` track the non-metadata events
/// have non-decreasing timestamps.
///
/// # Errors
///
/// Returns a message naming the offending track.
pub fn check_monotonic_per_track(events: &[ChromeEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut last: HashMap<(i64, i64), f64> = HashMap::new();
    for ev in events {
        if ev.ph == "M" {
            continue;
        }
        let key = (ev.pid, ev.tid);
        if let Some(prev) = last.get(&key) {
            if ev.ts < *prev {
                return Err(format!(
                    "track pid={} tid={}: ts {} after {}",
                    ev.pid, ev.tid, ev.ts, prev
                ));
            }
        }
        last.insert(key, ev.ts);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, SpanEmitter, TraceSink};
    use std::sync::Arc;

    fn demo_events() -> Vec<TraceEvent> {
        let sink = Arc::new(MemorySink::new());
        let e = sink.begin_epoch();
        let mut reader = SpanEmitter::new(sink.clone(), e, 0, RiscRole::Brisc);
        let mut compute = SpanEmitter::new(sink.clone(), e, 0, RiscRole::Trisc);
        reader.span_begin("reader", 0);
        reader.complete("noc-read", 10, 32, &[("bytes", 4096)]);
        reader.instant("cb_stall", 50, &[("cb", 0), ("side", 0)]);
        reader.span_end("reader", 80);
        compute.span_begin("force-compute", 0);
        compute.counter("dst_tiles", 40, 6);
        compute.span_end("force-compute", 100);
        sink.end_epoch(e, 100);
        sink.host_instant("launch-done", &[]);
        sink.export()
    }

    #[test]
    fn export_round_trips() {
        let events = demo_events();
        let doc = to_chrome_trace(&events);
        let parsed = parse_chrome_trace(&doc).unwrap();
        let non_meta = parsed.iter().filter(|e| e.ph != "M").count();
        assert_eq!(non_meta, events.len());
        check_monotonic_per_track(&parsed).unwrap();
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn tracks_are_distinct_per_core_and_role() {
        assert_ne!(track_tid(0, RiscRole::Brisc), track_tid(0, RiscRole::Trisc));
        assert_ne!(track_tid(0, RiscRole::Brisc), track_tid(1, RiscRole::Brisc));
        assert_eq!(track_tid(HOST_CORE, RiscRole::Host), 0);
    }
}
