//! Card power model.
//!
//! Reproduces the power behaviour the paper observes with `tt-smi` (Fig. 4):
//!
//! * idle cards draw 10–11 W;
//! * once a job starts, *all powered-on* cards rise — unused ones sit steady
//!   below 20 W;
//! * the active card fluctuates between 26 and 33 W, peaking during
//!   offloaded force computation and dipping while the host handles the
//!   non-offloaded (predictor/corrector) parts;
//! * after the job, idle power is slightly elevated relative to the pre-job
//!   baseline and only returns to nominal after a reset.
//!
//! A card's lifetime is a [`PowerTimeline`] — a piecewise sequence of
//! [`PowerState`]s over virtual time. Telemetry samplers evaluate
//! `power_at(t)`, which adds deterministic (seeded) fluctuation so repeated
//! experiments are reproducible.

use crate::cost::CostModel;

/// Coarse power state of one card.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Card idle before any job.
    Idle,
    /// Job running on the host, this card powered but unused.
    PoweredUnused,
    /// This card actively computing, alternating device bursts and host
    /// phases.
    ComputeActive,
    /// Job finished, card idle but not yet reset (slightly elevated).
    PostRunIdle,
}

/// Wattage parameters, defaults matching Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Mean idle power (W).
    pub idle_w: f64,
    /// Half-range of idle wobble (W).
    pub idle_wobble_w: f64,
    /// Steady power of a powered-but-unused card during a job (W).
    pub powered_unused_w: f64,
    /// Active-card power during device compute bursts (W).
    pub active_peak_w: f64,
    /// Active-card power while the host handles non-offloaded work (W).
    pub active_trough_w: f64,
    /// Period of the burst/host alternation (s) — one Hermite step's
    /// offload/host cadence as seen at 1 Hz sampling.
    pub burst_period_s: f64,
    /// Fraction of each period spent in the device burst.
    pub burst_duty: f64,
    /// Post-run idle elevation above `idle_w` (W).
    pub post_run_elevation_w: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            idle_w: 10.5,
            idle_wobble_w: 0.5,
            powered_unused_w: 18.0,
            active_peak_w: 33.0,
            active_trough_w: 26.0,
            burst_period_s: 7.0,
            burst_duty: 0.72,
            post_run_elevation_w: 1.2,
        }
    }
}

/// One segment of a card's power history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Segment start (inclusive), virtual seconds.
    pub start: f64,
    /// Segment end (exclusive), virtual seconds.
    pub end: f64,
    /// State during the segment.
    pub state: PowerState,
}

/// Piecewise power history of one card.
#[derive(Debug, Clone, Default)]
pub struct PowerTimeline {
    params_seed: u64,
    params: Option<PowerParams>,
    segments: Vec<PowerSegment>,
}

impl PowerTimeline {
    /// Empty timeline with default parameters and a noise seed (per card, so
    /// the four cards of Fig. 4 wobble independently).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PowerTimeline { params_seed: seed, params: None, segments: Vec::new() }
    }

    /// Override the wattage parameters.
    pub fn set_params(&mut self, params: PowerParams) {
        self.params = Some(params);
    }

    /// Active wattage parameters.
    #[must_use]
    pub fn params(&self) -> PowerParams {
        self.params.unwrap_or_default()
    }

    /// Append a segment of `duration` seconds in `state`, contiguous with the
    /// previous segment.
    ///
    /// # Panics
    /// Panics on negative duration.
    pub fn push(&mut self, state: PowerState, duration: f64) {
        assert!(duration >= 0.0, "segment duration must be non-negative");
        let start = self.end_time();
        self.segments.push(PowerSegment { start, end: start + duration, state });
    }

    /// End of the last segment (0 for an empty timeline).
    #[must_use]
    pub fn end_time(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.end)
    }

    /// The segments recorded so far.
    #[must_use]
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Clear history (device reset also clears the post-run elevation).
    pub fn reset(&mut self) {
        self.segments.clear();
    }

    /// Instantaneous power draw at virtual time `t`, in watts. Times past the
    /// recorded history extend the last state (or idle for an empty
    /// timeline).
    #[must_use]
    pub fn power_at(&self, t: f64) -> f64 {
        let state = self
            .segments
            .iter()
            .find(|s| t >= s.start && t < s.end)
            .or(self.segments.last().filter(|s| t >= s.end))
            .map_or(PowerState::Idle, |s| s.state);
        let p = self.params();
        match state {
            PowerState::Idle => p.idle_w + self.wobble(t, p.idle_wobble_w),
            PowerState::PoweredUnused => p.powered_unused_w + self.wobble(t, 0.6),
            PowerState::PostRunIdle => {
                p.idle_w + p.post_run_elevation_w + self.wobble(t, p.idle_wobble_w)
            }
            PowerState::ComputeActive => {
                // Alternate device bursts (peak) with host phases (trough).
                let phase = (t / p.burst_period_s).fract();
                let base = if phase < p.burst_duty { p.active_peak_w } else { p.active_trough_w };
                (base + self.wobble(t, 1.0)).clamp(p.active_trough_w - 0.5, p.active_peak_w + 0.5)
            }
        }
    }

    /// Deterministic pseudo-noise in `[-amplitude, amplitude]`, a hash of the
    /// sample time and the card seed.
    fn wobble(&self, t: f64, amplitude: f64) -> f64 {
        let quantized = (t * 8.0).floor() as i64 as u64;
        let mut h = quantized ^ self.params_seed.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let unit = (h as f64 / u64::MAX as f64) * 2.0 - 1.0;
        unit * amplitude
    }

    /// Exact energy (J) of the recorded history between `t0` and `t1`,
    /// integrating the mean power of each state (fluctuations average out;
    /// telemetry integrates sampled power instead, and tests compare the
    /// two).
    #[must_use]
    pub fn mean_energy(&self, t0: f64, t1: f64) -> f64 {
        let p = self.params();
        self.segments
            .iter()
            .map(|s| {
                let overlap = (s.end.min(t1) - s.start.max(t0)).max(0.0);
                let mean_w = match s.state {
                    PowerState::Idle => p.idle_w,
                    PowerState::PoweredUnused => p.powered_unused_w,
                    PowerState::PostRunIdle => p.idle_w + p.post_run_elevation_w,
                    PowerState::ComputeActive => {
                        p.active_peak_w * p.burst_duty + p.active_trough_w * (1.0 - p.burst_duty)
                    }
                };
                overlap * mean_w
            })
            .sum()
    }
}

/// Convenience: the mean active power implied by the default parameters,
/// used by the analytic energy model.
#[must_use]
pub fn mean_active_power(params: &PowerParams) -> f64 {
    params.active_peak_w * params.burst_duty + params.active_trough_w * (1.0 - params.burst_duty)
}

/// Hook for relating compute activity to power: the fraction of a program's
/// time the device spends in bursts, derived from the cost model (currently
/// the default duty cycle; exposed for ablations).
#[must_use]
pub fn burst_duty_from_costs(_model: &CostModel) -> f64 {
    PowerParams::default().burst_duty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_in_paper_band() {
        let tl = PowerTimeline::new(3);
        // Empty timeline defaults to idle.
        for i in 0..200 {
            let w = tl.power_at(i as f64 * 0.9);
            assert!((10.0..=11.0).contains(&w), "idle power {w} outside 10-11 W");
        }
    }

    #[test]
    fn powered_unused_below_20w() {
        let mut tl = PowerTimeline::new(7);
        tl.push(PowerState::PoweredUnused, 100.0);
        for i in 0..100 {
            let w = tl.power_at(i as f64);
            assert!(w < 20.0, "unused card must stay below 20 W, got {w}");
            assert!(w > 15.0);
        }
    }

    #[test]
    fn active_power_fluctuates_26_to_33() {
        let mut tl = PowerTimeline::new(11);
        tl.push(PowerState::ComputeActive, 300.0);
        let samples: Vec<f64> = (0..300).map(|i| tl.power_at(i as f64)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((25.5..=27.5).contains(&lo), "trough {lo}");
        assert!((31.5..=33.5).contains(&hi), "peak {hi}");
        // It genuinely alternates.
        assert!(hi - lo > 4.0);
    }

    #[test]
    fn post_run_idle_slightly_elevated() {
        let mut tl = PowerTimeline::new(5);
        tl.push(PowerState::Idle, 120.0);
        tl.push(PowerState::ComputeActive, 300.0);
        tl.push(PowerState::PostRunIdle, 120.0);
        let pre: f64 = (0..100).map(|i| tl.power_at(i as f64)).sum::<f64>() / 100.0;
        let post: f64 = (0..100).map(|i| tl.power_at(430.0 + i as f64)).sum::<f64>() / 100.0;
        assert!(post > pre + 0.5, "post-run idle ({post}) must exceed pre-run ({pre})");
        assert!(post < pre + 3.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut tl = PowerTimeline::new(1);
        tl.push(PowerState::ComputeActive, 10.0);
        tl.reset();
        assert_eq!(tl.end_time(), 0.0);
        assert!(tl.power_at(5.0) < 12.0);
    }

    #[test]
    fn mean_energy_integrates_segments() {
        let mut tl = PowerTimeline::new(0);
        tl.push(PowerState::Idle, 100.0);
        tl.push(PowerState::ComputeActive, 100.0);
        let p = tl.params();
        let idle = tl.mean_energy(0.0, 100.0);
        assert!((idle - p.idle_w * 100.0).abs() < 1e-9);
        let active = tl.mean_energy(100.0, 200.0);
        assert!((active - mean_active_power(&p) * 100.0).abs() < 1e-9);
        // Window clipping.
        assert!((tl.mean_energy(50.0, 150.0) - (idle / 2.0 + active / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = PowerTimeline::new(42);
        let mut b = PowerTimeline::new(42);
        let mut c = PowerTimeline::new(43);
        for tl in [&mut a, &mut b, &mut c] {
            tl.push(PowerState::ComputeActive, 50.0);
        }
        let sa: Vec<f64> = (0..50).map(|i| a.power_at(i as f64)).collect();
        let sb: Vec<f64> = (0..50).map(|i| b.power_at(i as f64)).collect();
        let sc: Vec<f64> = (0..50).map(|i| c.power_at(i as f64)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        PowerTimeline::new(0).push(PowerState::Idle, -1.0);
    }
}
