//! Offline drop-in subset of the `parking_lot` 0.12 API.
//!
//! Backed by `std::sync` primitives. The semantic difference that matters to
//! this workspace is preserved: parking_lot locks do **not** poison, so a
//! panicking kernel thread (the command queue catches panics with
//! `catch_unwind`) must not wedge the locks other kernels are blocked on.
//! Poison errors from the std layer are therefore unwrapped into the inner
//! guard everywhere.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that does not poison on panics.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_for`] can take it
/// by value (std's wait APIs consume the guard) while presenting
/// parking_lot's `&mut guard` calling convention.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock that does not poison on panics.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(!*g, "guard reacquired and readable");
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                let timed_out = cv.wait_for(&mut g, Duration::from_secs(5)).timed_out();
                assert!(!timed_out, "must be woken, not timed out");
            }
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
