//! N-body (Hénon) units and physical conversions.
//!
//! Star-cluster codes work in the standard N-body unit system: G = 1, total
//! mass M = 1, total energy E = −1/4, which fixes the virial radius at 1 and
//! the crossing time at 2√2. Converting to physical units requires choosing
//! a mass scale and a length scale; the helpers here do the bookkeeping for
//! interpreting simulations of real clusters.

/// Newton's constant in SI, m³ kg⁻¹ s⁻².
pub const G_SI: f64 = 6.674_30e-11;
/// One solar mass in kg.
pub const MSUN_KG: f64 = 1.988_47e30;
/// One parsec in metres.
pub const PARSEC_M: f64 = 3.085_677_581_49e16;
/// Seconds per megayear.
pub const MYR_S: f64 = 3.155_76e13;

/// Standard N-body total energy.
pub const HENON_ENERGY: f64 = -0.25;
/// Crossing time in Hénon units: t_cr = GM^{5/2} / (−4E)^{3/2} = 2√2.
pub const HENON_CROSSING_TIME: f64 = 2.828_427_124_746_190_3;

/// A choice of physical scales pinning N-body units to a real cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitSystem {
    /// Mass unit in solar masses (the cluster's total mass).
    pub mass_msun: f64,
    /// Length unit in parsecs (the cluster's virial radius).
    pub length_pc: f64,
}

impl UnitSystem {
    /// Scales for a typical dense star cluster: 10⁵ M⊙ within a 1 pc virial
    /// radius — the kind of system the paper's gravitational-wave-progenitor
    /// motivation targets.
    #[must_use]
    pub fn dense_cluster() -> Self {
        UnitSystem { mass_msun: 1.0e5, length_pc: 1.0 }
    }

    /// Time unit in seconds: T = sqrt(L³ / (G M)).
    #[must_use]
    pub fn time_unit_s(&self) -> f64 {
        let m = self.mass_msun * MSUN_KG;
        let l = self.length_pc * PARSEC_M;
        (l.powi(3) / (G_SI * m)).sqrt()
    }

    /// Time unit in megayears.
    #[must_use]
    pub fn time_unit_myr(&self) -> f64 {
        self.time_unit_s() / MYR_S
    }

    /// Velocity unit in km/s: V = L / T.
    #[must_use]
    pub fn velocity_unit_kms(&self) -> f64 {
        self.length_pc * PARSEC_M / self.time_unit_s() / 1.0e3
    }

    /// Convert a time span from N-body units to megayears.
    #[must_use]
    pub fn to_myr(&self, t_nbody: f64) -> f64 {
        t_nbody * self.time_unit_myr()
    }

    /// Convert a length from N-body units to parsecs.
    #[must_use]
    pub fn to_pc(&self, l_nbody: f64) -> f64 {
        l_nbody * self.length_pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_time_constant() {
        // t_cr = G M^{5/2} (2|E|)^{-3/2} = 2 sqrt(2) with E = −1/4, M = G = 1.
        let e: f64 = HENON_ENERGY;
        let tcr = (2.0 * e.abs()).powf(-1.5);
        assert!((tcr - HENON_CROSSING_TIME).abs() < 1e-12);
        assert!((HENON_CROSSING_TIME - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dense_cluster_time_unit_is_sub_myr() {
        // 10^5 Msun in 1 pc: T = sqrt(L^3/GM) ≈ 0.047 Myr.
        let u = UnitSystem::dense_cluster();
        let t = u.time_unit_myr();
        assert!((0.02..0.1).contains(&t), "time unit {t} Myr");
    }

    #[test]
    fn velocity_unit_plausible() {
        // Dense cluster: ~21 km/s scale velocity.
        let u = UnitSystem::dense_cluster();
        let v = u.velocity_unit_kms();
        assert!((10.0..40.0).contains(&v), "velocity unit {v} km/s");
    }

    #[test]
    fn conversions_scale_linearly() {
        let u = UnitSystem::dense_cluster();
        assert!((u.to_myr(2.0) - 2.0 * u.time_unit_myr()).abs() < 1e-12);
        assert_eq!(u.to_pc(3.0), 3.0);
    }

    #[test]
    fn heavier_cluster_has_shorter_time_unit() {
        let light = UnitSystem { mass_msun: 1.0e4, length_pc: 1.0 };
        let heavy = UnitSystem { mass_msun: 1.0e6, length_pc: 1.0 };
        assert!(heavy.time_unit_myr() < light.time_unit_myr());
    }
}
