//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so this crate provides a
//! compile-compatible skeleton for the workspace's benches. Registration is
//! no-op by default — `cargo test` also executes `harness = false` bench
//! binaries, and those must stay instant. Set `CRITERION_SMOKE=1` to execute
//! every registered routine once (a smoke run, no statistics).

use std::fmt;
use std::time::Duration;

/// Re-export of the optimizer barrier benches use.
pub use std::hint::black_box;

fn smoke_enabled() -> bool {
    std::env::var_os("CRITERION_SMOKE").is_some_and(|v| v == "1")
}

/// Declared throughput of a benchmark (recorded, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (recorded, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings too.
pub trait IntoBenchmarkId {
    /// Convert to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    run: bool,
}

impl Bencher {
    /// Run `routine` (once, in smoke mode; never otherwise).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.run {
            black_box(routine());
        }
    }

    /// Run `routine` over inputs produced by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.run {
            black_box(routine(setup()));
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the group's throughput (no-op).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Set the sample count (no-op).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Set the measurement window (no-op).
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Set the warm-up window (no-op).
    pub fn warm_up_time(&mut self, _d: Duration) {}

    /// Register (and in smoke mode execute) one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let run = smoke_enabled();
        if run {
            eprintln!("smoke-bench {}/{}", self.name, id.name);
        }
        let mut b = Bencher { run };
        f(&mut b);
        self.criterion.registered += 1;
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    registered: usize,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks registered so far.
    #[must_use]
    pub fn registered(&self) -> usize {
        self.registered
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(1));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("with-param", 42), |b| {
            b.iter_batched(|| vec![1, 2], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn registration_is_instant_and_counted() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.registered(), 2);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
