//! Block (hierarchical) individual time steps.
//!
//! Production direct N-body codes — including the in-house code family the
//! paper accelerates — do not advance every particle with one shared step:
//! each particle gets an individual step quantized to a power-of-two
//! fraction of a base step ("block" steps), so tight binaries integrate on
//! small steps while the halo coasts on large ones. Force evaluations then
//! cost O(N_active · N) instead of O(N²) per smallest step.
//!
//! The scheme: particle `i` carries its last-corrected state at time `tᵢ`
//! and a step `dtᵢ = dt_max / 2^kᵢ` aligned to the block grid. Each
//! iteration advances the globally earliest due time; *every* particle is
//! predicted there (FP64 host work), but only the due ("active") particles
//! get a force evaluation and Hermite correction, after which their step is
//! re-chosen from the Aarseth criterion (growing only when the new time
//! stays block-aligned).

use crate::force::ForceKernel;
use crate::integrator::timestep::aarseth_timestep;
use crate::particle::{ParticleSystem, Vec3};

/// Largest power-of-two block step `dt_max / 2^k` that is ≤ `dt_raw`
/// (clamped to `levels` halvings below `dt_max`) and whose next firing from
/// relative time `t_rel` (time since the block grid's origin) stays on the
/// block grid: `t_rel` must be a multiple of the chosen step.
///
/// This is the one quantization rule every block-timestep scheduler in the
/// workspace shares — the CPU [`BlockHermite`] here and the evaluator-seam
/// scheduler in the core crate — so checkpoint/resume of a block hierarchy
/// re-derives identical steps.
#[must_use]
pub fn quantize_block_step(dt_raw: f64, t_rel: f64, dt_max: f64, levels: u32) -> f64 {
    let dt_min = dt_max * 0.5f64.powi(levels.min(40) as i32);
    let mut dt = dt_max;
    while dt > dt_raw.max(dt_min) * (1.0 + 1e-12) {
        dt /= 2.0;
    }
    // Block alignment: t_rel must be a multiple of dt (up to rounding).
    while dt > dt_min && (t_rel / dt - (t_rel / dt).round()).abs() > 1e-9 {
        dt /= 2.0;
    }
    dt
}

/// Block-timestep 4th-order Hermite integrator.
#[derive(Debug, Clone, Copy)]
pub struct BlockHermite<K> {
    kernel: K,
    /// Aarseth accuracy parameter η.
    pub eta: f64,
    /// Largest (base) block step.
    pub dt_max: f64,
    /// Number of halvings allowed below `dt_max` (levels 0..=levels).
    pub levels: u32,
}

/// Per-particle integration state.
#[derive(Debug, Clone)]
struct BlockState {
    /// Last correction time per particle.
    t: Vec<f64>,
    /// Current block step per particle.
    dt: Vec<f64>,
    /// State at the last correction (the osculating data prediction uses).
    pos0: Vec<Vec3>,
    vel0: Vec<Vec3>,
    acc0: Vec<Vec3>,
    jerk0: Vec<Vec3>,
    /// Force evaluations performed, in units of (i-particles × all j).
    pub work: u64,
}

/// Outcome of a block-timestep run.
#[derive(Debug, Clone, Copy)]
pub struct BlockRunStats {
    /// Block iterations executed.
    pub iterations: usize,
    /// Total per-particle force evaluations (Σ active-set sizes).
    pub particle_evaluations: u64,
    /// Smallest step any particle used.
    pub min_dt_used: f64,
}

impl<K: ForceKernel> BlockHermite<K> {
    /// Integrator with accuracy parameter `eta`, base step `dt_max` and
    /// `levels` allowed halvings.
    ///
    /// # Panics
    /// Panics unless `eta > 0`, `dt_max > 0`.
    #[must_use]
    pub fn new(kernel: K, eta: f64, dt_max: f64, levels: u32) -> Self {
        assert!(eta > 0.0 && dt_max > 0.0, "eta and dt_max must be positive");
        assert!(levels <= 40, "unreasonable level count");
        BlockHermite { kernel, eta, dt_max, levels }
    }

    fn quantize_step(&self, dt_raw: f64, t_now: f64) -> f64 {
        quantize_block_step(dt_raw, t_now, self.dt_max, self.levels)
    }

    fn initialize(&self, system: &mut ParticleSystem) -> BlockState {
        let f = self.kernel.compute(system);
        system.set_forces(f.acc.clone(), f.jerk.clone());
        let n = system.len();
        let mut dt = Vec::with_capacity(n);
        for i in 0..n {
            let raw = aarseth_timestep(f.acc[i], f.jerk[i], self.eta, self.dt_max);
            dt.push(self.quantize_step(raw, 0.0));
        }
        BlockState {
            t: vec![system.time; n],
            dt,
            pos0: system.pos.clone(),
            vel0: system.vel.clone(),
            acc0: f.acc,
            jerk0: f.jerk,
            work: n as u64,
        }
    }

    /// Advance to `t_end` (must be a multiple of `dt_max` past the current
    /// time for the block grid to close). Returns run statistics.
    ///
    /// # Panics
    /// Panics if `t_end` is not ahead of the current time.
    pub fn evolve(&self, system: &mut ParticleSystem, t_end: f64) -> BlockRunStats {
        assert!(t_end > system.time, "t_end must lie ahead");
        let t_origin = system.time;
        let mut st = self.initialize(system);
        let n = system.len();
        let mut iterations = 0usize;
        let mut evals = 0u64;
        let mut min_dt = f64::INFINITY;

        while system.time < t_end - 1e-12 {
            // Next due time across all particles (clamped to t_end).
            let mut t_next = f64::INFINITY;
            for i in 0..n {
                t_next = t_next.min(st.t[i] + st.dt[i]);
            }
            let t_next = t_next.min(t_end);

            // Predict every particle to t_next (host-side FP64 pass).
            for i in 0..n {
                let h = t_next - st.t[i];
                let h2 = h * h / 2.0;
                let h3 = h * h * h / 6.0;
                for c in 0..3 {
                    system.pos[i][c] = st.pos0[i][c]
                        + st.vel0[i][c] * h
                        + st.acc0[i][c] * h2
                        + st.jerk0[i][c] * h3;
                    system.vel[i][c] =
                        st.vel0[i][c] + st.acc0[i][c] * h + st.jerk0[i][c] * h * h / 2.0;
                }
            }

            // Active set: particles due at t_next (or forced by t_end).
            let active: Vec<usize> = (0..n)
                .filter(|&i| st.t[i] + st.dt[i] <= t_next + 1e-12 || t_next >= t_end - 1e-12)
                .collect();

            // Evaluate forces for the active particles only: permute them to
            // the front and use the kernel's range interface (O(|A|·N)).
            let forces = self.evaluate_subset(system, &active);
            evals += active.len() as u64;
            st.work += active.len() as u64;

            // Hermite-correct the active particles.
            for (slot, &i) in active.iter().enumerate() {
                let h = t_next - st.t[i];
                if h <= 0.0 {
                    continue;
                }
                min_dt = min_dt.min(h);
                let half = h / 2.0;
                let twelfth = h * h / 12.0;
                let (a1, j1) = (forces.acc[slot], forces.jerk[slot]);
                for c in 0..3 {
                    let v1 = st.vel0[i][c]
                        + (st.acc0[i][c] + a1[c]) * half
                        + (st.jerk0[i][c] - j1[c]) * twelfth;
                    let x1 = st.pos0[i][c]
                        + (st.vel0[i][c] + v1) * half
                        + (st.acc0[i][c] - a1[c]) * twelfth;
                    st.pos0[i][c] = x1;
                    st.vel0[i][c] = v1;
                    system.pos[i][c] = x1;
                    system.vel[i][c] = v1;
                }
                st.acc0[i] = a1;
                st.jerk0[i] = j1;
                st.t[i] = t_next;
                let raw = aarseth_timestep(a1, j1, self.eta, self.dt_max);
                st.dt[i] = self.quantize_step(raw, t_next - t_origin);
            }

            system.time = t_next;
            iterations += 1;
        }

        // Leave the system fully synchronized at t_end: corrected states.
        system.pos.clone_from(&st.pos0);
        system.vel.clone_from(&st.vel0);
        system.set_forces(st.acc0.clone(), st.jerk0.clone());
        BlockRunStats {
            iterations,
            particle_evaluations: evals,
            min_dt_used: if min_dt.is_finite() { min_dt } else { 0.0 },
        }
    }

    /// Forces on `active` particles from all N, via a front-permutation and
    /// the kernel's contiguous-range interface.
    fn evaluate_subset(
        &self,
        system: &ParticleSystem,
        active: &[usize],
    ) -> crate::particle::Forces {
        if active.len() == system.len() {
            return self.kernel.compute(system);
        }
        let n = system.len();
        let mut order: Vec<usize> = active.to_vec();
        let in_active: Vec<bool> = {
            let mut v = vec![false; n];
            for &i in active {
                v[i] = true;
            }
            v
        };
        order.extend((0..n).filter(|i| !in_active[*i]));

        let mut permuted = ParticleSystem::with_capacity(n);
        for &i in &order {
            permuted.push(system.mass[i], system.pos[i], system.vel[i]);
        }
        self.kernel.compute_range(&permuted, 0, active.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{relative_energy_error, total_energy};
    use crate::force::ReferenceKernel;
    use crate::ic::{plummer, two_cluster_merger, PlummerConfig, TwoClusterConfig};
    use crate::integrator::{circular_binary, Hermite4, Integrator};

    #[test]
    fn conserves_energy_on_cluster() {
        let mut s = plummer(PlummerConfig { n: 64, seed: 200, ..PlummerConfig::default() });
        let eps = 0.03;
        let e0 = total_energy(&s, eps);
        let integ = BlockHermite::new(ReferenceKernel::new(eps), 0.01, 1.0 / 16.0, 6);
        let stats = integ.evolve(&mut s, 0.5);
        let err = relative_energy_error(total_energy(&s, eps), e0);
        assert!(err < 1e-4, "energy error {err}");
        assert!(stats.iterations > 8, "must take block iterations");
        assert!((s.time - 0.5).abs() < 1e-9);
    }

    #[test]
    fn matches_shared_step_at_zero_levels() {
        // levels = 0 forces every particle onto dt_max: the scheme reduces
        // to the shared-timestep Hermite integrator.
        let mk = || circular_binary(1.0);
        let dt = 1.0 / 64.0;

        let mut a = mk();
        let block = BlockHermite::new(ReferenceKernel::new(0.0), 1.0e9, dt, 0);
        block.evolve(&mut a, 0.25);

        let mut b = mk();
        let shared = Hermite4::new(ReferenceKernel::new(0.0));
        shared.evolve(&mut b, 0.25, dt);

        for i in 0..2 {
            for c in 0..3 {
                assert!(
                    (a.pos[i][c] - b.pos[i][c]).abs() < 1e-12,
                    "divergence at particle {i} axis {c}: {} vs {}",
                    a.pos[i][c],
                    b.pos[i][c]
                );
            }
        }
    }

    #[test]
    fn does_less_work_than_shared_stepping() {
        // A merger has a dense core and a diffuse envelope: individual
        // steps should evaluate far fewer particle-forces than forcing
        // everyone onto the smallest step.
        let mut s = two_cluster_merger(TwoClusterConfig {
            n1: 48,
            n2: 48,
            separation: 3.0,
            ..Default::default()
        });
        let eps = 0.02;
        let integ = BlockHermite::new(ReferenceKernel::new(eps), 0.01, 1.0 / 8.0, 8);
        let stats = integ.evolve(&mut s, 0.25);

        // Shared stepping at the smallest used step would cost:
        let n = s.len() as u64;
        let shared_evals = (0.25 / stats.min_dt_used).round() as u64 * n;
        assert!(
            stats.particle_evaluations < shared_evals / 2,
            "block {} vs shared-at-min-dt {} evaluations",
            stats.particle_evaluations,
            shared_evals
        );
    }

    #[test]
    fn steps_stay_on_block_grid() {
        let integ = BlockHermite::new(ReferenceKernel::new(0.01), 0.02, 0.25, 4);
        // Quantized steps are dt_max / 2^k.
        for raw in [0.3, 0.2, 0.12, 0.05, 0.01, 1e-6] {
            let q = integ.quantize_step(raw, 0.0);
            let k = (integ.dt_max / q).log2().round();
            assert!(
                ((integ.dt_max / q).log2() - k).abs() < 1e-9,
                "step {q} is not a power-of-two fraction"
            );
            assert!(q <= integ.dt_max + 1e-15);
        }
        // Alignment: at t = 0.125 a step of 0.25 would leave the grid.
        let q = integ.quantize_step(1.0, 0.125);
        assert!(q <= 0.125 + 1e-12, "misaligned step {q}");
    }

    #[test]
    #[should_panic(expected = "ahead")]
    fn backwards_evolution_rejected() {
        let mut s = circular_binary(1.0);
        s.time = 1.0;
        BlockHermite::new(ReferenceKernel::new(0.0), 0.01, 0.125, 3).evolve(&mut s, 0.5);
    }
}
