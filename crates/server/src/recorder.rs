//! Black-box flight recorder for the job server.
//!
//! An aircraft flight recorder does not log everything forever — it keeps
//! the *recent past* in a bounded ring and survives the crash. Same idea
//! here: the campaign loop feeds every server event (arrivals, dispatches,
//! migrations, quarantines, completions, sheds) into a drop-oldest
//! [`MemorySink::bounded`] ring stamped with virtual-clock nanoseconds, at
//! a cost small enough to leave on always. When something actually goes
//! wrong — a golden mismatch, a job loss (shed), or a breaker trip — the
//! recorder dumps the last-K events plus a full server-state snapshot
//! (queue depths, breaker states, fleet health) to a JSON post-mortem
//! file. Post-mortems are deterministic: filenames index trigger order,
//! timestamps are virtual, and replaying the campaign seed reproduces the
//! same bytes.

use std::path::{Path, PathBuf};

use tt_trace::event::{EventKind, RiscRole, TraceEvent, HOST_CORE};
use tt_trace::json::escape;
use tt_trace::serving::virtual_ns;
use tt_trace::{MemorySink, TraceSink};

use crate::breaker::BreakerState;

/// Flight-recorder tuning.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity: the last `last_k` server events are retained. `0`
    /// disables the recorder entirely (the bench baseline).
    pub last_k: usize,
    /// Directory for post-mortem JSON dumps; `None` records triggers but
    /// writes no files (replay runs use this to avoid double-dumping).
    pub dump_dir: Option<PathBuf>,
    /// At most this many post-mortem files per campaign; later triggers
    /// are still recorded in the report but not written out.
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { last_k: 256, dump_dir: None, max_dumps: 8 }
    }
}

/// What pulled the trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// A completed job's final state hash missed its fault-free golden.
    GoldenMismatch,
    /// An admitted job was shed — lost to the client, even though typed.
    JobLoss,
    /// A backend's circuit breaker tripped into quarantine.
    BreakerTrip,
}

impl TriggerKind {
    /// Stable kebab-case tag for filenames and log lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::GoldenMismatch => "golden-mismatch",
            TriggerKind::JobLoss => "job-loss",
            TriggerKind::BreakerTrip => "breaker-trip",
        }
    }
}

/// One backend's line in the server-state snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSnapshot {
    /// Backend label (`card0`, `ring1x2+1`, …).
    pub label: String,
    /// Whether the slot was serving a segment at snapshot time.
    pub busy: bool,
    /// Breaker state rendered by [`breaker_label`].
    pub breaker: String,
    /// Jobs whose final segment completed here so far.
    pub completed: u64,
    /// Terminal faults charged here so far.
    pub terminal_faults: u64,
    /// Breaker trips so far.
    pub trips: u32,
}

/// Point-in-time server state captured alongside each post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Virtual time of the trigger.
    pub t_s: f64,
    /// Jobs queued across all tenants.
    pub queue_depth: usize,
    /// Queued jobs per tenant, indexed by tenant id.
    pub tenant_depths: Vec<usize>,
    /// CPU evaluator slots in use.
    pub cpu_busy: usize,
    /// Breaker trips across the fleet so far.
    pub quarantines: u64,
    /// Jobs already resolved (completed or shed).
    pub jobs_recorded: usize,
    /// Per-backend health.
    pub slots: Vec<SlotSnapshot>,
}

/// Render a breaker state for snapshots (stable, greppable).
#[must_use]
pub fn breaker_label(state: BreakerState) -> String {
    match state {
        BreakerState::Closed => "closed".to_string(),
        BreakerState::Strained { strikes } => format!("strained:{strikes}"),
        BreakerState::Quarantined { until_s } => format!("quarantined-until:{until_s:.6}"),
        BreakerState::Probation => "probation".to_string(),
    }
}

/// Record of one trigger, kept in the campaign report whether or not a
/// file was written.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// What fired.
    pub trigger: TriggerKind,
    /// Job involved, when the trigger is job-scoped.
    pub job_id: Option<u64>,
    /// One-line human detail (shed reason, hash pair, slot label).
    pub detail: String,
    /// Virtual time of the trigger.
    pub t_s: f64,
    /// Dump file, when one was written (`None` past `max_dumps` or with
    /// no `dump_dir`).
    pub path: Option<PathBuf>,
}

/// The always-on ring plus trigger/dump machinery. Owned by the campaign
/// loop; all methods are `&mut self` because the loop is single-threaded
/// by construction.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: Option<MemorySink>,
    seq: u64,
    postmortems: Vec<Postmortem>,
}

impl FlightRecorder {
    /// Build from config; `last_k == 0` yields a disabled recorder whose
    /// methods are near-free no-ops.
    #[must_use]
    pub fn new(cfg: FlightConfig) -> Self {
        let ring = (cfg.last_k > 0).then(|| MemorySink::bounded(cfg.last_k));
        FlightRecorder { cfg, ring, seq: 0, postmortems: Vec::new() }
    }

    /// Whether the ring is recording.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Events evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, MemorySink::dropped)
    }

    /// Record one server event at virtual time `t_s`.
    pub fn note(&mut self, t_s: f64, name: &str, args: &[(&str, u64)]) {
        let Some(ring) = &self.ring else { return };
        let seq = self.seq;
        self.seq += 1;
        ring.record(TraceEvent {
            epoch: 0,
            ts: virtual_ns(t_s),
            core: HOST_CORE,
            role: RiscRole::Host,
            seq,
            name: name.to_string(),
            kind: EventKind::Instant,
            args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        });
    }

    /// Fire a trigger: snapshot + last-K events become a post-mortem. The
    /// trigger is always recorded in the report; the JSON file is written
    /// only while under `max_dumps` and a `dump_dir` is configured.
    /// Returns the dump path when a file was written.
    pub fn trigger(
        &mut self,
        kind: TriggerKind,
        job_id: Option<u64>,
        detail: &str,
        snapshot: &ServerSnapshot,
    ) -> Option<PathBuf> {
        self.ring.as_ref()?;
        let path = match (&self.cfg.dump_dir, self.postmortems.len() < self.cfg.max_dumps) {
            (Some(dir), true) => {
                let name =
                    format!("postmortem-{:03}-{}.json", self.postmortems.len(), kind.label());
                let path = dir.join(name);
                match self.write_dump(&path, kind, job_id, detail, snapshot) {
                    Ok(()) => Some(path),
                    Err(_) => None, // unwritable dump dir must not kill the campaign
                }
            }
            _ => None,
        };
        self.postmortems.push(Postmortem {
            trigger: kind,
            job_id,
            detail: detail.to_string(),
            t_s: snapshot.t_s,
            path: path.clone(),
        });
        path
    }

    /// Triggers recorded so far.
    #[must_use]
    pub fn postmortems(&self) -> &[Postmortem] {
        &self.postmortems
    }

    /// Hand the trigger records to the campaign report.
    #[must_use]
    pub fn take_postmortems(&mut self) -> Vec<Postmortem> {
        std::mem::take(&mut self.postmortems)
    }

    fn write_dump(
        &self,
        path: &Path,
        kind: TriggerKind,
        job_id: Option<u64>,
        detail: &str,
        snap: &ServerSnapshot,
    ) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render_dump(kind, job_id, detail, snap))
    }

    fn render_dump(
        &self,
        kind: TriggerKind,
        job_id: Option<u64>,
        detail: &str,
        snap: &ServerSnapshot,
    ) -> String {
        let ring = self.ring.as_ref().expect("render_dump requires an enabled ring");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"trigger\": \"{}\",\n", kind.label()));
        match job_id {
            Some(id) => out.push_str(&format!("  \"job_id\": {id},\n")),
            None => out.push_str("  \"job_id\": null,\n"),
        }
        out.push_str(&format!("  \"detail\": \"{}\",\n", escape(detail)));
        out.push_str(&format!("  \"t_s\": {:.6},\n", snap.t_s));
        out.push_str("  \"snapshot\": {\n");
        out.push_str(&format!("    \"queue_depth\": {},\n", snap.queue_depth));
        let depths: Vec<String> = snap.tenant_depths.iter().map(ToString::to_string).collect();
        out.push_str(&format!("    \"tenant_depths\": [{}],\n", depths.join(",")));
        out.push_str(&format!("    \"cpu_busy\": {},\n", snap.cpu_busy));
        out.push_str(&format!("    \"quarantines\": {},\n", snap.quarantines));
        out.push_str(&format!("    \"jobs_recorded\": {},\n", snap.jobs_recorded));
        out.push_str("    \"slots\": [\n");
        for (i, s) in snap.slots.iter().enumerate() {
            let comma = if i + 1 < snap.slots.len() { "," } else { "" };
            out.push_str(&format!(
                "      {{\"label\": \"{}\", \"busy\": {}, \"breaker\": \"{}\", \
                 \"completed\": {}, \"terminal_faults\": {}, \"trips\": {}}}{comma}\n",
                escape(&s.label),
                s.busy,
                escape(&s.breaker),
                s.completed,
                s.terminal_faults,
                s.trips,
            ));
        }
        out.push_str("    ]\n  },\n");
        out.push_str("  \"ring\": {\n");
        out.push_str(&format!("    \"capacity\": {},\n", self.cfg.last_k));
        out.push_str(&format!("    \"dropped\": {},\n", ring.dropped()));
        out.push_str("    \"events\": [\n");
        let events = ring.events();
        for (i, ev) in events.iter().enumerate() {
            let comma = if i + 1 < events.len() { "," } else { "" };
            let args: Vec<String> =
                ev.args.iter().map(|(k, v)| format!("\"{}\": {v}", escape(k))).collect();
            out.push_str(&format!(
                "      {{\"ts_ns\": {}, \"name\": \"{}\", \"args\": {{{}}}}}{comma}\n",
                ev.ts,
                escape(&ev.name),
                args.join(", "),
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_s: f64) -> ServerSnapshot {
        ServerSnapshot {
            t_s,
            queue_depth: 3,
            tenant_depths: vec![2, 1],
            cpu_busy: 0,
            quarantines: 1,
            jobs_recorded: 4,
            slots: vec![SlotSnapshot {
                label: "card0".into(),
                busy: true,
                breaker: breaker_label(BreakerState::Strained { strikes: 1 }),
                completed: 2,
                terminal_faults: 1,
                trips: 0,
            }],
        }
    }

    fn dump_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tt-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut rec = FlightRecorder::new(FlightConfig { last_k: 0, ..FlightConfig::default() });
        assert!(!rec.enabled());
        rec.note(1.0, "job_arrive", &[("job", 0)]);
        assert_eq!(rec.trigger(TriggerKind::JobLoss, Some(0), "x", &snap(1.0)), None);
        assert!(rec.postmortems().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_recent_past() {
        let mut rec = FlightRecorder::new(FlightConfig { last_k: 4, ..FlightConfig::default() });
        for i in 0..10u64 {
            rec.note(i as f64 * 0.1, "ev", &[("i", i)]);
        }
        assert_eq!(rec.dropped(), 6);
        let doc = rec.render_dump(TriggerKind::BreakerTrip, None, "slot card0", &snap(1.0));
        assert!(doc.contains("\"dropped\": 6"));
        assert!(doc.contains("\"i\": 9"), "newest event retained");
        assert!(!doc.contains("\"i\": 5"), "evicted event absent");
    }

    #[test]
    fn triggers_dump_json_up_to_max_dumps() {
        let dir = dump_dir("cap");
        let mut rec = FlightRecorder::new(FlightConfig {
            last_k: 8,
            dump_dir: Some(dir.clone()),
            max_dumps: 2,
        });
        rec.note(0.5, "job_arrive", &[("job", 7), ("tenant", 1)]);
        let s = snap(0.75);
        let p0 = rec.trigger(TriggerKind::JobLoss, Some(7), "queue full", &s).unwrap();
        let p1 = rec.trigger(TriggerKind::GoldenMismatch, Some(8), "hash 1 != 2", &s).unwrap();
        let p2 = rec.trigger(TriggerKind::BreakerTrip, None, "card0", &s);
        assert_eq!(p2, None, "third trigger exceeds max_dumps");
        assert_eq!(rec.postmortems().len(), 3, "all triggers recorded regardless");
        assert!(p0.ends_with("postmortem-000-job-loss.json"));
        assert!(p1.ends_with("postmortem-001-golden-mismatch.json"));
        let body = std::fs::read_to_string(&p0).unwrap();
        assert!(body.contains("\"trigger\": \"job-loss\""));
        assert!(body.contains("\"job_id\": 7"));
        assert!(body.contains("\"queue_depth\": 3"));
        assert!(body.contains("\"breaker\": \"strained:1\""));
        assert!(body.contains("\"name\": \"job_arrive\""));
        assert!(body.contains("\"ts_ns\": 500000000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dump_dir_records_triggers_without_files() {
        let mut rec = FlightRecorder::new(FlightConfig::default());
        assert_eq!(rec.trigger(TriggerKind::JobLoss, Some(1), "deadline", &snap(2.0)), None);
        let pm = rec.take_postmortems();
        assert_eq!(pm.len(), 1);
        assert_eq!(pm[0].path, None);
        assert_eq!(pm[0].trigger, TriggerKind::JobLoss);
        assert!(rec.postmortems().is_empty(), "take drains");
    }
}
