use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::DeviceForcePipeline;
use std::sync::Arc;
use tensix::{Device, DeviceConfig};

fn main() {
    let n = 1024;
    let sys = plummer(PlummerConfig { n, seed: 1, ..PlummerConfig::default() });
    let dev = Device::new(0, DeviceConfig::default());
    let p = DeviceForcePipeline::new(Arc::clone(&dev), n, 0.01, 1).unwrap();
    let _ = p.evaluate(&sys).unwrap();
    let t = p.timing();
    // one core, 1 target tile, 1024 sources -> pairs = 1024*1024 per core
    let pairs = (n * n) as f64;
    println!("compute cycles: {}", t.last_eval_cycles);
    println!("cycles/pair (per core): {}", t.last_eval_cycles as f64 / pairs);
    println!("device seconds: {}", t.device_seconds);
    println!("io seconds: {}", t.io_seconds);
}
