//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate reimplements exactly the surface the workspace uses: a seeded
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64), [`Rng::gen`]
//! for `f64`/`f32`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over half-open
//! and inclusive numeric ranges. Streams are fully deterministic per seed,
//! which is all the simulator's fault injectors and campaign machinery need.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (the only constructor the
    /// workspace uses; always deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    };
}
float_range!(f64);
float_range!(f32);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i64);
int_range!(i32);

/// High-level sampling interface, auto-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution (`f64`/`f32` in
    /// [0, 1), integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator — xoshiro256++ with SplitMix64
    /// seeding (the same construction rand 0.8's `SmallRng` family uses on
    /// 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let k = r.gen_range(5usize..9);
            assert!((5..9).contains(&k));
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
