//! # tt-nbody — reproduction of the SC'25 Tenstorrent Wormhole N-body study
//!
//! Umbrella crate re-exporting the full stack:
//!
//! * [`tensix`] — the Wormhole n300 device simulator (tiles, circular
//!   buffers, SFPU/FPU, NoC, GDDR6, power model, reset-failure injection);
//! * [`ttmetal`] — the TT-Metalium-style host + kernel programming API;
//! * [`nbody`] — direct-summation N-body physics (ICs, force kernels,
//!   Hermite integrator, diagnostics);
//! * [`nbody_tt`] — the paper's contribution: the force+jerk pipeline on the
//!   device, plus the calibrated paper-scale performance model;
//! * [`tt_telemetry`] — tt-smi / RAPL / IPMI measurement emulation and the
//!   campaign runner;
//! * [`tt_harness`] — the experiments regenerating every figure and table.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![warn(missing_docs)]

pub use nbody;
pub use nbody_tt;
pub use tensix;
pub use tt_harness;
pub use tt_telemetry;
pub use ttmetal;

/// Commonly used items for examples and downstream users.
pub mod prelude {
    pub use nbody::{
        plummer, ForceKernel, Forces, Hermite4, Integrator, ParticleSystem, PlummerConfig,
        ReferenceKernel, SimdKernel, ThreadedKernel,
    };
    pub use nbody_tt::{
        run_device_simulation, DeviceForceKernel, DeviceForcePipeline, SimulationConfig,
    };
    pub use tensix::{Device, DeviceConfig};
    pub use ttmetal::{create_device, open_cluster, CommandQueue, Program};
}
