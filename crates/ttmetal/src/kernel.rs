//! Kernel traits and circular-buffer index conventions.
//!
//! A TT-Metalium program runs up to three kinds of kernels per Tensix core:
//! two *data-movement* kernels (on the RISC-V NC and B cores, one per NoC)
//! and one *compute* kernel (driving the UNPACK/MATH/PACK trio). In the
//! simulator a kernel is a Rust value implementing [`DataMovementKernel`] or
//! [`ComputeKernel`]; the command queue runs each on its own OS thread, so
//! the read → compute → write pipeline genuinely overlaps through the
//! circular buffers, as in the paper's dataflow execution model.
//!
//! Kernels signal fatal errors by panicking (the hardware analogue is a
//! hung/asserted core); the queue converts panics into
//! [`tensix::TensixError::KernelFault`] and poisons the program's CBs so the
//! remaining kernels terminate instead of deadlocking.

use crate::context::{ComputeCtx, DataMovementCtx};

/// Circular-buffer indices, following the TT-Metalium convention.
pub mod cb_index {
    /// First input CB.
    pub const IN0: u8 = 0;
    /// Second input CB.
    pub const IN1: u8 = 1;
    /// Third input CB.
    pub const IN2: u8 = 2;
    /// Fourth input CB.
    pub const IN3: u8 = 3;
    /// Fifth input CB.
    pub const IN4: u8 = 4;
    /// Sixth input CB.
    pub const IN5: u8 = 5;
    /// Seventh input CB.
    pub const IN6: u8 = 6;
    /// Eighth input CB.
    pub const IN7: u8 = 7;
    /// First output CB.
    pub const OUT0: u8 = 16;
    /// Second output CB.
    pub const OUT1: u8 = 17;
    /// Third output CB.
    pub const OUT2: u8 = 18;
    /// Fourth output CB.
    pub const OUT3: u8 = 19;
    /// Fifth output CB.
    pub const OUT4: u8 = 20;
    /// Sixth output CB.
    pub const OUT5: u8 = 21;
    /// First intermediate (scratch) CB — the paper stages dx/dy/dz here.
    pub const INTERMED0: u8 = 24;
    /// Second intermediate CB.
    pub const INTERMED1: u8 = 25;
    /// Third intermediate CB.
    pub const INTERMED2: u8 = 26;
    /// Fourth intermediate CB.
    pub const INTERMED3: u8 = 27;
    /// Fifth intermediate CB.
    pub const INTERMED4: u8 = 28;
    /// Sixth intermediate CB.
    pub const INTERMED5: u8 = 29;
    /// Total number of CB slots per core.
    pub const NUM_CBS: usize = 32;
}

/// A data-movement kernel (reader or writer), executed on one of the two
/// "Baby" RISC-V data-movement cores.
pub trait DataMovementKernel: Send + Sync {
    /// Kernel body. Runs once per enqueue on every core in the kernel's core
    /// set, with per-core runtime arguments available through the context.
    fn run(&self, ctx: &mut DataMovementCtx);
}

/// A compute kernel, executed on the UNPACK/MATH/PACK compute cores.
pub trait ComputeKernel: Send + Sync {
    /// Kernel body.
    fn run(&self, ctx: &mut ComputeCtx);
}

impl<F> DataMovementKernel for F
where
    F: Fn(&mut DataMovementCtx) + Send + Sync,
{
    fn run(&self, ctx: &mut DataMovementCtx) {
        self(ctx);
    }
}

/// Wrapper so plain closures can serve as compute kernels without clashing
/// with the blanket data-movement impl.
pub struct ComputeFn<F>(pub F);

impl<F> ComputeKernel for ComputeFn<F>
where
    F: Fn(&mut ComputeCtx) + Send + Sync,
{
    fn run(&self, ctx: &mut ComputeCtx) {
        self.0(ctx);
    }
}
