//! Experiment E1 — Fig. 3: time-to-solution distributions.
//!
//! Submits 50 accelerated jobs (reset failures included, as in the paper's
//! campaign) and 49 CPU jobs, prints both histograms with their means, the
//! census, and the paper-vs-measured table.

use std::fs;
use std::path::Path;

use tt_harness::{default_run, render_histogram, render_table, run_fig3, Comparison};
use tt_telemetry::stats::{mean, std_dev};

fn main() {
    if tt_harness::maybe_run_profile() {
        return;
    }
    let run = default_run();
    let result = run_fig3(&run, 0x5c25);

    println!("=== E1 / Fig. 3: time-to-solution ===\n");
    println!(
        "census: {} accelerated jobs submitted, {} completed ({} failed at device reset); \
         49 CPU jobs, all completed\n",
        result.accel_submitted,
        result.accel_succeeded,
        result.accel_submitted - result.accel_succeeded
    );
    println!("{}", render_histogram("Fig 3(a): device + CPU", &result.accel_times, 9, "s"));
    println!("{}", render_histogram("Fig 3(b): CPU only", &result.cpu_times, 9, "s"));

    let rows = vec![
        Comparison::new("time-to-solution accel (mean)", 301.40, mean(&result.accel_times), "s"),
        Comparison::new("time-to-solution accel (std)", 0.24, std_dev(&result.accel_times), "s"),
        Comparison::new("time-to-solution CPU (mean)", 672.90, mean(&result.cpu_times), "s"),
        Comparison::new("time-to-solution CPU (std)", 7.83, std_dev(&result.cpu_times), "s"),
        Comparison::new("speedup", 2.23, result.speedup, "x"),
        Comparison::new("accel jobs completed", 26.0, result.accel_succeeded as f64, "jobs"),
    ];
    println!("{}", render_table("paper vs measured", &rows, 0.30));

    fs::create_dir_all("results").ok();
    let mut csv = String::from("kind,time_to_solution_s\n");
    for t in &result.accel_times {
        csv.push_str(&format!("accel,{t:.4}\n"));
    }
    for t in &result.cpu_times {
        csv.push_str(&format!("cpu,{t:.4}\n"));
    }
    fs::write(Path::new("results/fig3_time_to_solution.csv"), csv).ok();
    println!("raw data written to results/fig3_time_to_solution.csv");
}
