//! Full mixed-precision simulations with a force backend in the loop.
//!
//! Drives the 4th-order Hermite integrator — prediction/correction in FP64
//! on the host, force and jerk in FP32 on the backend — and reports both
//! physics diagnostics and virtual-time accounting, mirroring the paper's
//! representative-simulation structure (N particles, a number of time
//! cycles each made of Hermite steps).
//!
//! The drivers are generic over [`ForceEvaluator`], so the same loop (and
//! the same checkpoint/restart machinery) runs against the single-card
//! pipeline, the multi-card ring, or the CPU reference kernel. The named
//! entry points ([`run_device_simulation`], [`run_ring_simulation_resilient`],
//! [`run_cpu_simulation`], …) are thin wrappers that pick the backend.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use nbody::diagnostics::{relative_energy_error, total_energy};
use nbody::force::{SimdKernel, ThreadedKernel};
use nbody::integrator::{aarseth_timestep, quantize_block_step, Hermite4, Integrator};
use nbody::particle::{ParticleSystem, Vec3};
use tensix::{Device, Result, TensixError};
use tt_telemetry::BlockStepReport;
use ttmetal::LaunchError;

use crate::evaluator::{
    ActiveSet, CpuForceEvaluator, EvaluatorKernel, ForceEvaluator, SingleCardEvaluator,
};
use crate::multi_device::MultiDevicePipeline;
use crate::pipeline::{DeviceForcePipeline, ForceKernelKind, PipelineTiming, RetryPolicy};

/// Configuration of a device-accelerated simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Plummer softening (must be positive for the device kernel).
    pub eps: f64,
    /// Time cycles (outer loop, as in the paper's "ten time cycles").
    pub cycles: usize,
    /// Hermite steps per cycle.
    pub steps_per_cycle: usize,
    /// Fixed step size in N-body time units. For block-step runs this is
    /// the *base* (largest) block step; particles subdivide below it.
    pub dt: f64,
    /// Tensix cores to use (per device, for multi-card runs).
    pub num_cores: usize,
    /// Hierarchical block time-steps: `Some` switches the drivers from the
    /// shared-step Hermite loop to the active-set block scheduler.
    pub blocks: Option<BlockStepConfig>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            eps: 0.01,
            cycles: 10,
            steps_per_cycle: 4,
            dt: 1.0 / 512.0,
            num_cores: 4,
            blocks: None,
        }
    }
}

/// Parameters of the hierarchical block-time-step scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStepConfig {
    /// Aarseth accuracy parameter η (per-particle dt = η |a| / |ȧ|).
    pub eta: f64,
    /// Power-of-two halvings allowed below the base step: particle steps
    /// live on `dt / 2^k` for `k in 0..=levels`.
    pub levels: u32,
}

impl Default for BlockStepConfig {
    fn default() -> Self {
        BlockStepConfig { eta: 0.02, levels: 6 }
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Steps executed.
    pub steps: usize,
    /// Final simulation time (N-body units).
    pub final_time: f64,
    /// Relative energy error |ΔE/E₀| over the run.
    pub energy_error: f64,
    /// Initial total energy.
    pub initial_energy: f64,
    /// Final total energy.
    pub final_energy: f64,
    /// Device/IO virtual-time accounting (device runs only).
    pub timing: Option<PipelineTiming>,
    /// Kernel name that produced the forces.
    pub kernel: &'static str,
}

/// Evolve `system` for `cycles × steps_per_cycle` Hermite steps against any
/// [`ForceEvaluator`]. The backend's accumulated timing (if it has a device
/// clock) and backend name are reported in the outcome.
///
/// # Panics
/// Backend faults unwind with a typed [`TensixError`] payload (there is no
/// retry or recovery here — see [`run_simulation_resilient`]); also panics
/// on a particle-count mismatch with the evaluator.
#[must_use]
pub fn run_simulation<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
) -> SimulationOutcome {
    assert_eq!(system.len(), evaluator.n(), "evaluator built for n = {}", evaluator.n());
    let integ = Hermite4::new(EvaluatorKernel::new(Arc::clone(evaluator)));
    let e0 = total_energy(system, config.eps);

    integ.initialize(system);
    let total_steps = config.cycles * config.steps_per_cycle;
    for _cycle in 0..config.cycles {
        for _ in 0..config.steps_per_cycle {
            integ.step(system, config.dt);
        }
    }
    let e1 = total_energy(system, config.eps);
    SimulationOutcome {
        steps: total_steps,
        final_time: system.time,
        energy_error: relative_energy_error(e1, e0),
        initial_energy: e0,
        final_energy: e1,
        timing: evaluator.timing(),
        kernel: evaluator.backend(),
    }
}

/// Evolve `system` on one Wormhole device for
/// `cycles × steps_per_cycle` Hermite steps.
///
/// # Errors
/// Pipeline construction failures.
///
/// # Panics
/// Kernel faults unwind (see [`run_simulation`]).
pub fn run_device_simulation(
    device: Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
) -> Result<SimulationOutcome> {
    let pipeline =
        Arc::new(DeviceForcePipeline::new(device, system.len(), config.eps, config.num_cores)?);
    Ok(run_simulation(&pipeline, system, config))
}

/// Where (and how fast) resilient runs spill their checkpoints.
///
/// With a spill configured, the checkpoint lives on disk instead of in host
/// memory: every snapshot is serialized with a content hash, the write time
/// is charged to the virtual clock (as IO), and a restore re-reads and
/// verifies the file — catching silent checkpoint corruption instead of
/// resuming from garbage. Each checkpoint is its own file
/// (`<path>.s<step>`), and the store garbage-collects all but the newest
/// `keep_last` so long-lived serving never fills the disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillConfig {
    /// Checkpoint file stem; checkpoint of step `k` lands at `<path>.s<k>`.
    pub path: PathBuf,
    /// Modeled sequential write bandwidth in GB/s, used to charge the spill
    /// to the virtual clock.
    pub write_gbps: f64,
    /// How many checkpoint files to retain on disk (older ones are deleted
    /// after each successful write). Clamped to at least 1.
    pub keep_last: usize,
}

impl SpillConfig {
    /// Spill to `path` at the default modeled bandwidth (2 GB/s NVMe-class
    /// sequential writes), retaining the last two checkpoints.
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        SpillConfig { path, write_gbps: 2.0, keep_last: 2 }
    }

    /// On-disk file of the step-`step` checkpoint.
    #[must_use]
    pub fn file_for(&self, step: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".s{step}"));
        PathBuf::from(name)
    }

    /// Steps of every checkpoint file currently on disk for this stem,
    /// sorted ascending. Missing directories read as empty (never an error:
    /// the question "is there anything to resume from?" has answer no).
    #[must_use]
    pub fn checkpoints_on_disk(&self) -> Vec<usize> {
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let Some(stem) = self.path.file_name().map(|s| s.to_string_lossy().into_owned()) else {
            return Vec::new();
        };
        let prefix = format!("{stem}.s");
        let Ok(entries) = std::fs::read_dir(parent) else { return Vec::new() };
        let mut steps: Vec<usize> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                e.file_name().to_string_lossy().strip_prefix(&prefix)?.parse::<usize>().ok()
            })
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Delete every checkpoint file of this stem (job teardown). Best
    /// effort: files that cannot be removed are left behind.
    pub fn cleanup(&self) {
        for step in self.checkpoints_on_disk() {
            let _ = std::fs::remove_file(self.file_for(step));
        }
    }
}

/// How the resilient runner survives faults mid-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Snapshot the FP64 Hermite state every this many successful steps.
    pub checkpoint_every: usize,
    /// In-place retry budget for transient launch faults (panics, deadlocks,
    /// stalls). Card loss is never retried in place — the card's DRAM is
    /// gone — and always goes through recovery + checkpoint restore instead.
    pub retry: RetryPolicy,
    /// How many card losses the runner will recover-and-resume past before
    /// giving up and surfacing the [`LaunchError`].
    pub max_recoveries: u32,
    /// Spill checkpoints to disk instead of keeping them in host memory.
    pub spill: Option<SpillConfig>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 4,
            retry: RetryPolicy::default(),
            max_recoveries: 2,
            spill: None,
        }
    }
}

/// Outcome of a resilient run: the physics plus the recovery ledger.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The simulation outcome, exactly as a fault-free run would report it
    /// (timing additionally includes the replayed work and any checkpoint
    /// spill IO).
    pub outcome: SimulationOutcome,
    /// Card losses survived via evaluator recovery + checkpoint restore.
    pub recoveries: u32,
    /// Steps re-executed after rolling back to a checkpoint.
    pub steps_replayed: usize,
    /// Ring members replaced by a spare *inside* an evaluation (multi-card
    /// backends only; zero elsewhere). These never cost a rollback.
    pub failovers: u64,
    /// Checkpoints written to disk (zero without a [`SpillConfig`]).
    pub checkpoint_spills: u64,
    /// Virtual seconds charged for checkpoint spill writes.
    pub spill_seconds: f64,
}

// ---------------------------------------------------------------------------
// Checkpoint storage: host memory, or a hashed spill file on disk.
// ---------------------------------------------------------------------------

const SPILL_MAGIC: u64 = 0x4e42_5454_434b_5054; // "NBTTCKPT"

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn spill_fault(message: String) -> LaunchError {
    LaunchError::Device(TensixError::KernelFault { message })
}

/// Typed (non-panicking, non-transient) error for checkpoint IO failures:
/// an unwritable spill directory, a full disk, or a missing file. The
/// serving layer matches on it to shed the job instead of unwinding.
fn spill_io_fault(path: &std::path::Path, e: &std::io::Error) -> LaunchError {
    LaunchError::Device(TensixError::CheckpointIo {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Serialize the FP64 Hermite state: time, then mass/pos/vel/acc/jerk as
/// little-endian f64 bit patterns (13 scalars per particle + 1).
fn spill_payload(system: &ParticleSystem) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 * (1 + 13 * system.len()));
    buf.extend_from_slice(&system.time.to_bits().to_le_bytes());
    for &m in &system.mass {
        buf.extend_from_slice(&m.to_bits().to_le_bytes());
    }
    for field in [&system.pos, &system.vel, &system.acc, &system.jerk] {
        for v in field {
            for &c in v {
                buf.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
    }
    buf
}

/// Serialize and write the step-`step` checkpoint of `system` to its spill
/// file, returning the bytes written (for virtual-clock IO charging).
///
/// # Errors
/// [`TensixError::CheckpointIo`] (behind [`LaunchError::Device`]) when the
/// spill directory is unwritable or the write fails.
pub fn write_checkpoint(
    spill: &SpillConfig,
    system: &ParticleSystem,
    step: usize,
) -> std::result::Result<u64, LaunchError> {
    let payload = spill_payload(system);
    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(&SPILL_MAGIC.to_le_bytes());
    out.extend_from_slice(&(step as u64).to_le_bytes());
    out.extend_from_slice(&(system.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    let file = spill.file_for(step);
    std::fs::write(&file, &out).map_err(|e| spill_io_fault(&file, &e))?;
    Ok(out.len() as u64)
}

/// Read back and verify the step-`step` checkpoint of `spill`.
///
/// # Errors
/// [`TensixError::CheckpointIo`] when the file is unreadable, or a
/// kernel-fault launch error when the content hash or framing is corrupt.
pub fn read_checkpoint(
    spill: &SpillConfig,
    step: usize,
) -> std::result::Result<(ParticleSystem, usize), LaunchError> {
    let file = spill.file_for(step);
    let raw = std::fs::read(&file).map_err(|e| spill_io_fault(&file, &e))?;
    let corrupt = |what: &str| spill_fault(format!("checkpoint {file:?} corrupt: {what}"));
    if raw.len() < 32 {
        return Err(corrupt("truncated header"));
    }
    let word = |i: usize| u64::from_le_bytes(raw[8 * i..8 * (i + 1)].try_into().unwrap());
    if word(0) != SPILL_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let header_step = word(1) as usize;
    let n = word(2) as usize;
    let payload = &raw[32..];
    if payload.len() != 8 * (1 + 13 * n) {
        return Err(corrupt("payload length does not match particle count"));
    }
    if fnv1a(payload) != word(3) {
        return Err(corrupt("content hash mismatch"));
    }
    let mut scalars = payload.chunks_exact(8).map(|c| {
        f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
    });
    let mut system = ParticleSystem::with_capacity(n);
    system.time = scalars.next().expect("length checked above");
    system.mass = scalars.by_ref().take(n).collect();
    let mut vec3s = |out: &mut Vec<[f64; 3]>| {
        for _ in 0..n {
            let mut v = [0.0; 3];
            for c in &mut v {
                *c = scalars.next().expect("length checked above");
            }
            out.push(v);
        }
    };
    let (mut pos, mut vel, mut acc, mut jerk) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    vec3s(&mut pos);
    vec3s(&mut vel);
    vec3s(&mut acc);
    vec3s(&mut jerk);
    system.pos = pos;
    system.vel = vel;
    system.acc = acc;
    system.jerk = jerk;
    Ok((system, header_step))
}

/// Read the newest checkpoint on disk for `spill` — the migration entry
/// point: after a backend dies past its recovery budget, the server restores
/// the job's last spilled state here and resumes it elsewhere via
/// [`resume_simulation_resilient`].
///
/// # Errors
/// [`TensixError::CheckpointIo`] when no checkpoint file exists, plus the
/// [`read_checkpoint`] error contract.
pub fn latest_checkpoint(
    spill: &SpillConfig,
) -> std::result::Result<(ParticleSystem, usize), LaunchError> {
    let step = spill.checkpoints_on_disk().pop().ok_or_else(|| {
        LaunchError::Device(TensixError::CheckpointIo {
            path: spill.path.display().to_string(),
            message: "no checkpoint files on disk".into(),
        })
    })?;
    read_checkpoint(spill, step)
}

/// The resilient runner's checkpoint slot: an in-memory clone, or — with a
/// [`SpillConfig`] — hashed files on disk that restores re-read and verify,
/// garbage-collected down to the newest `keep_last`.
struct CheckpointStore {
    spill: Option<SpillConfig>,
    memory: Option<ParticleSystem>,
    step: usize,
    /// Steps with a live on-disk file, oldest first (the GC queue).
    on_disk: std::collections::VecDeque<usize>,
    spills: u64,
    seconds: f64,
}

impl CheckpointStore {
    fn new(spill: Option<SpillConfig>) -> Self {
        CheckpointStore {
            spill,
            memory: None,
            step: 0,
            on_disk: std::collections::VecDeque::new(),
            spills: 0,
            seconds: 0.0,
        }
    }

    fn save(
        &mut self,
        system: &ParticleSystem,
        step: usize,
    ) -> std::result::Result<(), LaunchError> {
        self.step = step;
        match &self.spill {
            Some(spill) => {
                let bytes = write_checkpoint(spill, system, step)?;
                self.spills += 1;
                self.seconds += bytes as f64 / (spill.write_gbps * 1e9);
                self.memory = None; // disk is the only copy: restores must go through it
                                    // Keep-last-K retention: drop the oldest files once the new
                                    // one is safely down. Deletion is best-effort (a file we
                                    // cannot remove is a leak, not a correctness problem).
                self.on_disk.push_back(step);
                while self.on_disk.len() > spill.keep_last.max(1) {
                    if let Some(old) = self.on_disk.pop_front() {
                        let _ = std::fs::remove_file(spill.file_for(old));
                    }
                }
            }
            None => self.memory = Some(system.clone()),
        }
        Ok(())
    }

    /// Restore the checkpoint into `system`, returning its step index.
    fn restore(&self, system: &mut ParticleSystem) -> std::result::Result<usize, LaunchError> {
        match &self.spill {
            Some(spill) => {
                let (state, step) = read_checkpoint(spill, self.step)?;
                if step != self.step || state.len() != system.len() {
                    return Err(spill_fault(format!(
                        "checkpoint {:?} is stale: holds step {step}, expected {}",
                        spill.file_for(self.step),
                        self.step
                    )));
                }
                *system = state;
            }
            None => {
                system.clone_from(self.memory.as_ref().expect("restore before first save"));
            }
        }
        Ok(self.step)
    }
}

/// Evolve `system` like [`run_simulation`], but survive injected faults:
/// transient launch failures are retried in place (through the one shared
/// retry driver), and a mid-run card loss goes through
/// [`ForceEvaluator::recover_device_loss`] → restore of the last FP64
/// checkpoint → replay. Because the checkpoint holds the exact host-side
/// Hermite state and every backend is deterministic, a recovered run is
/// f64-bitwise identical to a fault-free one — on a single card *and* on a
/// multi-card ring.
///
/// # Errors
/// Non-transient faults the evaluator cannot recover from, checkpoint spill
/// failures (including a content-hash mismatch on restore), or more than
/// `recovery.max_recoveries` card losses.
///
/// # Panics
/// Re-raises kernel panics that are not device faults (e.g. assertion
/// failures in kernel code); panics on a particle-count mismatch.
pub fn run_simulation_resilient<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    run_resilient_inner(evaluator, system, config, recovery, None)
}

/// Resume a run from a restored checkpoint: `system` holds the exact FP64
/// post-init state of step `start_step` (as read by [`latest_checkpoint`] /
/// [`read_checkpoint`], which carry acc/jerk), so initialization is skipped
/// and stepping continues at `start_step + 1`. On a deterministic backend of
/// the same class, the resumed tail is f64-bitwise identical to the steps an
/// uninterrupted run would have taken — this is the server's
/// checkpoint-migration path between backends.
///
/// # Errors
/// Same contract as [`run_simulation_resilient`].
///
/// # Panics
/// Same contract as [`run_simulation_resilient`].
pub fn resume_simulation_resilient<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    start_step: usize,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    run_resilient_inner(evaluator, system, config, recovery, Some(start_step))
}

fn run_resilient_inner<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
    resume_from: Option<usize>,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    assert_eq!(system.len(), evaluator.n(), "evaluator built for n = {}", evaluator.n());
    let e0 = total_energy(system, config.eps);
    let mut recoveries: u32 = 0;
    let mut steps_replayed: usize = 0;

    let integ = Hermite4::new(EvaluatorKernel::with_retry(Arc::clone(evaluator), recovery.retry));

    // A catch_unwind'ed step, classified: Ok(true) success, Ok(false) a
    // card loss the evaluator absorbed (caller restores the checkpoint),
    // Err(..) terminal.
    let guarded =
        |body: &mut dyn FnMut(), recoveries: &mut u32| -> std::result::Result<bool, LaunchError> {
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(()) => Ok(true),
                Err(payload) => match payload.downcast::<TensixError>() {
                    Ok(err) => {
                        let cause = LaunchError::from(*err);
                        if cause.is_card_loss() && *recoveries < recovery.max_recoveries {
                            *recoveries += 1;
                            evaluator.recover_device_loss(cause)?;
                            Ok(false)
                        } else {
                            Err(cause)
                        }
                    }
                    Err(payload) => resume_unwind(payload),
                },
            }
        };

    // Initialization: Hermite4::initialize only mutates the system after the
    // force evaluation succeeds, so on card loss the state is untouched and
    // we can simply recover and try again. A resumed run arrives with the
    // post-init (or later-step) acc/jerk already in `system` — re-running
    // initialize would be redundant work and, on a different backend class,
    // would break bitwise identity with the interrupted run.
    let start_step = match resume_from {
        Some(step) => step,
        None => {
            loop {
                if guarded(&mut || integ.initialize(system), &mut recoveries)? {
                    break;
                }
            }
            0
        }
    };

    // Checkpoint *after* initialize: a resume restores the exact post-init
    // FP64 state and replays only whole steps, keeping bitwise identity.
    let mut checkpoint = CheckpointStore::new(recovery.spill.clone());
    checkpoint.save(system, start_step)?;

    let total_steps = config.cycles * config.steps_per_cycle;
    let mut step = start_step;
    while step < total_steps {
        if guarded(&mut || integ.step(system, config.dt), &mut recoveries)? {
            step += 1;
            // Checkpoint on every full stride, including one landing on the
            // final step: a card loss during a terminal partial stride must
            // never replay more than `checkpoint_every` steps.
            if step - checkpoint.step >= recovery.checkpoint_every.max(1) {
                checkpoint.save(system, step)?;
            }
        } else {
            // A failed step leaves `system` in the half-predicted state
            // Hermite4 writes before calling the kernel, so recovery always
            // restores the checkpoint.
            let restored = checkpoint.restore(system)?;
            steps_replayed += step - restored;
            step = restored;
        }
    }

    let e1 = total_energy(system, config.eps);
    let mut timing = evaluator.timing();
    if let Some(t) = timing.as_mut() {
        // Spill writes are host IO on the virtual clock.
        t.io_seconds += checkpoint.seconds;
    }
    Ok(ResilientOutcome {
        outcome: SimulationOutcome {
            steps: total_steps - start_step,
            final_time: system.time,
            energy_error: relative_energy_error(e1, e0),
            initial_energy: e0,
            final_energy: e1,
            timing,
            kernel: evaluator.backend(),
        },
        recoveries,
        steps_replayed,
        failovers: 0,
        checkpoint_spills: checkpoint.spills,
        spill_seconds: checkpoint.seconds,
    })
}

/// [`run_simulation_resilient`] on one Wormhole card: a mid-run device loss
/// triggers reset → pipeline rebuild → checkpoint restore → replay.
///
/// # Errors
/// Pipeline construction failures, non-transient kernel faults, reset
/// failures during recovery, or more than `recovery.max_recoveries` device
/// losses.
///
/// # Panics
/// Same contract as [`run_simulation_resilient`].
pub fn run_device_simulation_resilient(
    device: &Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    run_device_simulation_resilient_kernel(
        device,
        system,
        config,
        recovery,
        ForceKernelKind::Elementwise,
    )
}

/// [`run_device_simulation_resilient`] with an explicit force kernel; the
/// kind survives device-loss recovery (the rebuilt pipeline keeps it).
///
/// # Errors
/// Same contract as [`run_device_simulation_resilient`].
///
/// # Panics
/// Same contract as [`run_simulation_resilient`].
pub fn run_device_simulation_resilient_kernel(
    device: &Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
    kind: ForceKernelKind,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    let evaluator = Arc::new(SingleCardEvaluator::new_with_kernel(
        Arc::clone(device),
        system.len(),
        config.eps,
        config.num_cores,
        kind,
    )?);
    run_simulation_resilient(&evaluator, system, config, recovery)
}

/// [`run_simulation_resilient`] on a multi-card ring with a spare pool: a
/// card loss mid-run is first absorbed *inside* the evaluation by promoting
/// a spare (no rollback at all); once spares are exhausted, the loss
/// surfaces to the driver, which resets the dead card in place and restores
/// the checkpoint like the single-card path.
///
/// # Errors
/// Same contract as [`run_simulation_resilient`], plus ring construction
/// failures.
///
/// # Panics
/// Same contract as [`run_simulation_resilient`].
pub fn run_ring_simulation_resilient(
    devices: &[Arc<Device>],
    spares: &[Arc<Device>],
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    run_ring_simulation_resilient_kernel(
        devices,
        spares,
        system,
        config,
        recovery,
        ForceKernelKind::Elementwise,
    )
}

/// [`run_ring_simulation_resilient`] with an explicit per-card force kernel:
/// the kind threads through every ring pipeline, survives spare promotion,
/// and so holds for the whole run — a matrix-pipe ring stays matrix-pipe
/// across card losses.
///
/// # Errors
/// Same contract as [`run_ring_simulation_resilient`].
///
/// # Panics
/// Same contract as [`run_simulation_resilient`].
pub fn run_ring_simulation_resilient_kernel(
    devices: &[Arc<Device>],
    spares: &[Arc<Device>],
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
    kind: ForceKernelKind,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    let ring = Arc::new(MultiDevicePipeline::with_spares_kernel(
        devices,
        spares,
        system.len(),
        config.eps,
        config.num_cores,
        kind,
    )?);
    let mut out = run_simulation_resilient(&ring, system, config, recovery)?;
    out.failovers = ring.timing().failovers;
    Ok(out)
}

/// Evolve `system` with the CPU reference (threaded SIMD mixed-precision
/// kernel — the stand-in for the paper's AVX-512 + OpenMP implementation),
/// through the same evaluator seam as the device paths.
#[must_use]
pub fn run_cpu_simulation(
    system: &mut ParticleSystem,
    config: SimulationConfig,
    threads: usize,
) -> SimulationOutcome {
    let evaluator = Arc::new(CpuForceEvaluator::new(
        ThreadedKernel::new(SimdKernel::new(config.eps), threads),
        system.len(),
    ));
    run_simulation(&evaluator, system, config)
}

// ---------------------------------------------------------------------------
// Hierarchical block time-steps: the active-set scheduler.
// ---------------------------------------------------------------------------

/// Evaluate forces on `active` with transient faults retried in place.
///
/// Active-set retries always re-run the whole (already active-sized) launch:
/// the partial-salvage machinery of [`ForceEvaluator::evaluate_with_retry`]
/// exists to avoid repeating full-N grids, which an active launch never is.
/// The failed attempt's cycles are already billed as wasted by the pipeline.
fn eval_active_retrying<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &ParticleSystem,
    active: &ActiveSet,
    retry: RetryPolicy,
) -> std::result::Result<nbody::particle::Forces, LaunchError> {
    let mut attempt = 0u32;
    loop {
        match evaluator.evaluate_active(system, active) {
            Ok(f) => return Ok(f),
            Err(e) if e.is_transient() && attempt < retry.max_retries => attempt += 1,
            Err(e) => return Err(e),
        }
    }
}

/// Hierarchical block-time-step Hermite scheduler over the evaluator seam.
///
/// The CPU-side twin of `nbody`'s `BlockHermite`, restructured around
/// [`ForceEvaluator::evaluate_active`] so the *backend* sees the active set:
/// a device pipeline packs the active particles into gathered tiles and
/// sizes its launch grid to the block, the ring splits the block across
/// cards, and the CPU kernel front-permutes — the scheduler itself is
/// backend-agnostic. Each particle `i` carries its last-corrected state at
/// `t[i]` and a power-of-two step `dt[i] = dt_max / 2^k`; every iteration
/// advances the globally earliest due time, predicts all particles there in
/// FP64, and force-evaluates + Hermite-corrects only the due block.
///
/// Unlike the shared-step drivers (whose faults unwind as panics through the
/// `ForceKernel` seam), all force evaluation here is `Result`-typed, so the
/// resilient block runner needs no `catch_unwind`.
pub struct BlockScheduler<E> {
    evaluator: Arc<E>,
    blocks: BlockStepConfig,
    /// Base (largest) block step.
    dt_max: f64,
    retry: RetryPolicy,
    t_end: f64,
    /// Origin of the block grid (start time of the run); step alignment is
    /// judged relative to it, so it must survive checkpoint/restore.
    t_origin: f64,
    /// Last correction time per particle.
    t: Vec<f64>,
    /// Current block step per particle.
    dt: Vec<f64>,
    /// Corrected state at `t[i]` (the osculating data prediction uses;
    /// `system` itself holds predictions between corrections).
    pos0: Vec<Vec3>,
    vel0: Vec<Vec3>,
    acc0: Vec<Vec3>,
    jerk0: Vec<Vec3>,
    report: BlockStepReport,
}

impl<E: ForceEvaluator> BlockScheduler<E> {
    /// Initialize the block hierarchy: one full-N force evaluation seeds
    /// acc/jerk, then every particle's step comes from the Aarseth
    /// criterion quantized to the grid. The run ends at
    /// `system.time + cycles · steps_per_cycle · dt`.
    ///
    /// # Errors
    /// Unrecovered faults from the initializing evaluation.
    ///
    /// # Panics
    /// Panics on a particle-count mismatch with the evaluator or a
    /// non-positive base step.
    pub fn new(
        evaluator: Arc<E>,
        system: &mut ParticleSystem,
        config: SimulationConfig,
        retry: RetryPolicy,
    ) -> std::result::Result<Self, LaunchError> {
        assert_eq!(system.len(), evaluator.n(), "evaluator built for n = {}", evaluator.n());
        assert!(config.dt > 0.0, "base block step must be positive");
        let blocks = config.blocks.unwrap_or_default();
        let n = system.len();
        let t_end = system.time + (config.cycles * config.steps_per_cycle) as f64 * config.dt;

        let forces = eval_active_retrying(&evaluator, system, &ActiveSet::full(n), retry)?;
        system.set_forces(forces.acc.clone(), forces.jerk.clone());
        let mut dt = Vec::with_capacity(n);
        for i in 0..n {
            let raw = aarseth_timestep(forces.acc[i], forces.jerk[i], blocks.eta, config.dt);
            dt.push(quantize_block_step(raw, 0.0, config.dt, blocks.levels));
        }
        let mut report = BlockStepReport::new(n);
        report.record(n, 0.0); // the initializing full-N launch

        Ok(BlockScheduler {
            evaluator,
            blocks,
            dt_max: config.dt,
            retry,
            t_end,
            t_origin: system.time,
            t: vec![system.time; n],
            dt,
            pos0: system.pos.clone(),
            vel0: system.vel.clone(),
            acc0: forces.acc,
            jerk0: forces.jerk,
            report,
        })
    }

    /// Has the run reached `t_end`?
    #[must_use]
    pub fn done(&self, system: &ParticleSystem) -> bool {
        system.time >= self.t_end - 1e-12
    }

    /// The launch ledger so far.
    #[must_use]
    pub fn report(&self) -> &BlockStepReport {
        &self.report
    }

    /// Consume the scheduler, yielding the launch ledger.
    #[must_use]
    pub fn into_report(self) -> BlockStepReport {
        self.report
    }

    /// One block iteration: advance to the earliest due time, predict all,
    /// force-evaluate and correct the active block, re-choose its steps.
    /// The final iteration (the one landing on `t_end`) force-synchronizes
    /// every particle so the run ends with corrected state throughout.
    ///
    /// # Errors
    /// Unrecovered evaluation faults. `system` is left in the predicted
    /// (pre-correction) state; recovery must restore a checkpoint.
    pub fn step(&mut self, system: &mut ParticleSystem) -> std::result::Result<(), LaunchError> {
        debug_assert!(!self.done(system), "stepping past t_end");
        let n = system.len();
        let mut t_next = f64::INFINITY;
        for i in 0..n {
            t_next = t_next.min(self.t[i] + self.dt[i]);
        }
        let t_next = t_next.min(self.t_end);

        // Predict every particle to t_next (host-side FP64 pass).
        for i in 0..n {
            let h = t_next - self.t[i];
            let h2 = h * h / 2.0;
            let h3 = h * h * h / 6.0;
            for c in 0..3 {
                system.pos[i][c] = self.pos0[i][c]
                    + self.vel0[i][c] * h
                    + self.acc0[i][c] * h2
                    + self.jerk0[i][c] * h3;
                system.vel[i][c] =
                    self.vel0[i][c] + self.acc0[i][c] * h + self.jerk0[i][c] * h * h / 2.0;
            }
        }

        // Active block: particles due at t_next (everyone on the final sync).
        let forced_sync = t_next >= self.t_end - 1e-12;
        let due: Vec<usize> =
            (0..n).filter(|&i| forced_sync || self.t[i] + self.dt[i] <= t_next + 1e-12).collect();
        let active = ActiveSet::from_indices(due, n);
        let forces = eval_active_retrying(&self.evaluator, system, &active, self.retry)?;

        // Hermite-correct the block; row `slot` of `forces` is particle
        // `active.indices()[slot]` against all N sources.
        let mut min_h = f64::INFINITY;
        for (slot, &i) in active.indices().iter().enumerate() {
            let h = t_next - self.t[i];
            if h <= 0.0 {
                continue;
            }
            min_h = min_h.min(h);
            let half = h / 2.0;
            let twelfth = h * h / 12.0;
            let (a1, j1) = (forces.acc[slot], forces.jerk[slot]);
            for c in 0..3 {
                let v1 = self.vel0[i][c]
                    + (self.acc0[i][c] + a1[c]) * half
                    + (self.jerk0[i][c] - j1[c]) * twelfth;
                let x1 = self.pos0[i][c]
                    + (self.vel0[i][c] + v1) * half
                    + (self.acc0[i][c] - a1[c]) * twelfth;
                self.pos0[i][c] = x1;
                self.vel0[i][c] = v1;
                system.pos[i][c] = x1;
                system.vel[i][c] = v1;
            }
            self.acc0[i] = a1;
            self.jerk0[i] = j1;
            self.t[i] = t_next;
            let raw = aarseth_timestep(a1, j1, self.blocks.eta, self.dt_max);
            self.dt[i] =
                quantize_block_step(raw, t_next - self.t_origin, self.dt_max, self.blocks.levels);
        }

        system.time = t_next;
        self.report.record(active.len(), if min_h.is_finite() { min_h } else { 0.0 });

        if forced_sync {
            // Leave the system fully synchronized: corrected state only.
            system.pos.clone_from(&self.pos0);
            system.vel.clone_from(&self.vel0);
            system.set_forces(self.acc0.clone(), self.jerk0.clone());
        }
        Ok(())
    }

    /// Snapshot the full block hierarchy (corrected states, per-particle
    /// times and steps, the grid origin) for bitwise resume.
    #[must_use]
    pub fn checkpoint(&self, system: &ParticleSystem) -> BlockCheckpoint {
        BlockCheckpoint {
            time: system.time,
            t_origin: self.t_origin,
            mass: system.mass.clone(),
            pos0: self.pos0.clone(),
            vel0: self.vel0.clone(),
            acc0: self.acc0.clone(),
            jerk0: self.jerk0.clone(),
            t: self.t.clone(),
            dt: self.dt.clone(),
        }
    }

    /// Restore a [`checkpoint`](Self::checkpoint): the scheduler re-arms the
    /// hierarchy and `system` is reset to the corrected state, so the next
    /// [`step`](Self::step) replays exactly what the snapshotted run did.
    ///
    /// # Panics
    /// Panics on a particle-count mismatch.
    pub fn restore(&mut self, system: &mut ParticleSystem, ckpt: &BlockCheckpoint) {
        let n = system.len();
        assert_eq!(ckpt.mass.len(), n, "checkpoint holds a different particle count");
        self.t_origin = ckpt.t_origin;
        self.t.clone_from(&ckpt.t);
        self.dt.clone_from(&ckpt.dt);
        self.pos0.clone_from(&ckpt.pos0);
        self.vel0.clone_from(&ckpt.vel0);
        self.acc0.clone_from(&ckpt.acc0);
        self.jerk0.clone_from(&ckpt.jerk0);
        system.time = ckpt.time;
        system.mass.clone_from(&ckpt.mass);
        system.pos.clone_from(&ckpt.pos0);
        system.vel.clone_from(&ckpt.vel0);
        system.set_forces(ckpt.acc0.clone(), ckpt.jerk0.clone());
    }
}

/// A point-in-time snapshot of a block-step run: the FP64 corrected state
/// *and* the hierarchy (per-particle times/steps, grid origin) — everything
/// [`BlockScheduler::restore`] needs for a bitwise-identical resume.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCheckpoint {
    /// Simulation time of the snapshot.
    pub time: f64,
    /// Origin of the block grid (start of the run).
    pub t_origin: f64,
    /// Particle masses.
    pub mass: Vec<f64>,
    /// Corrected positions at `t[i]`.
    pub pos0: Vec<Vec3>,
    /// Corrected velocities at `t[i]`.
    pub vel0: Vec<Vec3>,
    /// Accelerations at `t[i]`.
    pub acc0: Vec<Vec3>,
    /// Jerks at `t[i]`.
    pub jerk0: Vec<Vec3>,
    /// Last correction time per particle.
    pub t: Vec<f64>,
    /// Current block step per particle.
    pub dt: Vec<f64>,
}

impl BlockCheckpoint {
    /// Bitmap (bit `i % 64` of word `i / 64`) of the particles due at the
    /// next block time — the active set the first resumed iteration will
    /// launch. Serialized into the spill payload (and its FNV hash) as a
    /// consistency check on the hierarchy.
    #[must_use]
    pub fn next_due_bitmap(&self) -> Vec<u64> {
        let n = self.mass.len();
        let mut t_next = f64::INFINITY;
        for i in 0..n {
            t_next = t_next.min(self.t[i] + self.dt[i]);
        }
        let mut words = vec![0u64; n.div_ceil(64)];
        for i in 0..n {
            if self.t[i] + self.dt[i] <= t_next + 1e-12 {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        words
    }
}

const SPILL_BLOCK_MAGIC: u64 = 0x4e42_5454_424c_4b53; // "NBTTBLKS"

/// Serialize a block checkpoint: time and grid origin, then mass, the four
/// corrected-state fields, per-particle times and steps (15 scalars per
/// particle + 2), then the next-due active-set bitmap — all under one FNV
/// content hash.
fn block_spill_payload(ckpt: &BlockCheckpoint) -> Vec<u8> {
    let n = ckpt.mass.len();
    let mut buf = Vec::with_capacity(8 * (2 + 15 * n + n.div_ceil(64)));
    buf.extend_from_slice(&ckpt.time.to_bits().to_le_bytes());
    buf.extend_from_slice(&ckpt.t_origin.to_bits().to_le_bytes());
    for &m in &ckpt.mass {
        buf.extend_from_slice(&m.to_bits().to_le_bytes());
    }
    for field in [&ckpt.pos0, &ckpt.vel0, &ckpt.acc0, &ckpt.jerk0] {
        for v in field {
            for &c in v {
                buf.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
    }
    for series in [&ckpt.t, &ckpt.dt] {
        for &x in series {
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    for w in ckpt.next_due_bitmap() {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

/// Write the iteration-`iteration` block checkpoint to its spill file,
/// returning the bytes written (for virtual-clock IO charging). The framing
/// matches [`write_checkpoint`] but under a distinct magic, so a shared-step
/// restore can never misread a block spill (or vice versa).
///
/// # Errors
/// Same contract as [`write_checkpoint`].
pub fn write_block_checkpoint(
    spill: &SpillConfig,
    ckpt: &BlockCheckpoint,
    iteration: usize,
) -> std::result::Result<u64, LaunchError> {
    let payload = block_spill_payload(ckpt);
    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(&SPILL_BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&(iteration as u64).to_le_bytes());
    out.extend_from_slice(&(ckpt.mass.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    let file = spill.file_for(iteration);
    std::fs::write(&file, &out).map_err(|e| spill_io_fault(&file, &e))?;
    Ok(out.len() as u64)
}

/// Read back and verify the iteration-`iteration` block checkpoint: framing,
/// content hash, and the serialized next-due bitmap against one re-derived
/// from the per-particle times (a hierarchy-consistency check).
///
/// # Errors
/// Same contract as [`read_checkpoint`].
pub fn read_block_checkpoint(
    spill: &SpillConfig,
    iteration: usize,
) -> std::result::Result<(BlockCheckpoint, usize), LaunchError> {
    let file = spill.file_for(iteration);
    let raw = std::fs::read(&file).map_err(|e| spill_io_fault(&file, &e))?;
    let corrupt = |what: &str| spill_fault(format!("block checkpoint {file:?} corrupt: {what}"));
    if raw.len() < 32 {
        return Err(corrupt("truncated header"));
    }
    let word = |i: usize| u64::from_le_bytes(raw[8 * i..8 * (i + 1)].try_into().unwrap());
    if word(0) != SPILL_BLOCK_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let header_iteration = word(1) as usize;
    let n = word(2) as usize;
    let payload = &raw[32..];
    let words = n.div_ceil(64);
    if payload.len() != 8 * (2 + 15 * n + words) {
        return Err(corrupt("payload length does not match particle count"));
    }
    if fnv1a(payload) != word(3) {
        return Err(corrupt("content hash mismatch"));
    }
    let scalar_bytes = 8 * (2 + 15 * n);
    let mut scalars = payload[..scalar_bytes].chunks_exact(8).map(|c| {
        f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
    });
    let time = scalars.next().expect("length checked above");
    let t_origin = scalars.next().expect("length checked above");
    let mass: Vec<f64> = scalars.by_ref().take(n).collect();
    let mut vec3s = || -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                let mut v = [0.0; 3];
                for c in &mut v {
                    *c = scalars.next().expect("length checked above");
                }
                v
            })
            .collect()
    };
    let pos0 = vec3s();
    let vel0 = vec3s();
    let acc0 = vec3s();
    let jerk0 = vec3s();
    let t: Vec<f64> = scalars.by_ref().take(n).collect();
    let dt: Vec<f64> = scalars.take(n).collect();
    let ckpt = BlockCheckpoint { time, t_origin, mass, pos0, vel0, acc0, jerk0, t, dt };
    let stored: Vec<u64> = payload[scalar_bytes..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
        .collect();
    if stored != ckpt.next_due_bitmap() {
        return Err(corrupt("active-set bitmap inconsistent with block times"));
    }
    Ok((ckpt, header_iteration))
}

/// The block runner's checkpoint slot: in-memory clone or hashed spill
/// files, with the same keep-last-K retention as [`CheckpointStore`].
struct BlockCheckpointStore {
    spill: Option<SpillConfig>,
    memory: Option<BlockCheckpoint>,
    iteration: usize,
    on_disk: std::collections::VecDeque<usize>,
    spills: u64,
    seconds: f64,
}

impl BlockCheckpointStore {
    fn new(spill: Option<SpillConfig>) -> Self {
        BlockCheckpointStore {
            spill,
            memory: None,
            iteration: 0,
            on_disk: std::collections::VecDeque::new(),
            spills: 0,
            seconds: 0.0,
        }
    }

    fn save(
        &mut self,
        ckpt: &BlockCheckpoint,
        iteration: usize,
    ) -> std::result::Result<(), LaunchError> {
        self.iteration = iteration;
        match &self.spill {
            Some(spill) => {
                let bytes = write_block_checkpoint(spill, ckpt, iteration)?;
                self.spills += 1;
                self.seconds += bytes as f64 / (spill.write_gbps * 1e9);
                self.memory = None;
                self.on_disk.push_back(iteration);
                while self.on_disk.len() > spill.keep_last.max(1) {
                    if let Some(old) = self.on_disk.pop_front() {
                        let _ = std::fs::remove_file(spill.file_for(old));
                    }
                }
            }
            None => self.memory = Some(ckpt.clone()),
        }
        Ok(())
    }

    fn restore(&self) -> std::result::Result<(BlockCheckpoint, usize), LaunchError> {
        match &self.spill {
            Some(spill) => {
                let (ckpt, iteration) = read_block_checkpoint(spill, self.iteration)?;
                if iteration != self.iteration {
                    return Err(spill_fault(format!(
                        "block checkpoint {:?} is stale: holds iteration {iteration}, expected {}",
                        spill.file_for(self.iteration),
                        self.iteration
                    )));
                }
                Ok((ckpt, iteration))
            }
            None => {
                let ckpt = self.memory.as_ref().expect("restore before first save").clone();
                Ok((ckpt, self.iteration))
            }
        }
    }
}

/// Outcome of a block-time-step run: the physics plus the launch ledger.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Physics and timing, as the shared-step drivers report it.
    /// `outcome.steps` counts block iterations (the initializing launch is
    /// not a step).
    pub outcome: SimulationOutcome,
    /// Active-set launch accounting (init launch included).
    pub report: BlockStepReport,
}

/// Outcome of a resilient block-time-step run.
#[derive(Debug, Clone)]
pub struct BlockResilientOutcome {
    /// Physics and timing (timing includes replayed work and spill IO).
    pub outcome: SimulationOutcome,
    /// Active-set launch accounting, *including* replayed launches — like
    /// the shared-step runner, recovery work is billed, not hidden.
    pub report: BlockStepReport,
    /// Card losses survived via evaluator recovery + checkpoint restore.
    pub recoveries: u32,
    /// Block iterations re-executed after rolling back to a checkpoint.
    pub iterations_replayed: usize,
    /// Checkpoints written to disk (zero without a [`SpillConfig`]).
    pub checkpoint_spills: u64,
    /// Virtual seconds charged for checkpoint spill writes.
    pub spill_seconds: f64,
}

/// Evolve `system` to `cycles · steps_per_cycle · dt` past its current time
/// with hierarchical block steps (`config.blocks`, defaulted when `None`)
/// against any [`ForceEvaluator`]. Faults are not retried or recovered —
/// see [`run_block_simulation_resilient`].
///
/// # Errors
/// Any evaluation fault.
///
/// # Panics
/// Panics on a particle-count mismatch with the evaluator.
pub fn run_block_simulation<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
) -> std::result::Result<BlockOutcome, LaunchError> {
    let e0 = total_energy(system, config.eps);
    let mut sched =
        BlockScheduler::new(Arc::clone(evaluator), system, config, RetryPolicy::disabled())?;
    while !sched.done(system) {
        sched.step(system)?;
    }
    let e1 = total_energy(system, config.eps);
    let report = sched.into_report();
    Ok(BlockOutcome {
        outcome: SimulationOutcome {
            steps: (report.iterations - 1) as usize,
            final_time: system.time,
            energy_error: relative_energy_error(e1, e0),
            initial_energy: e0,
            final_energy: e1,
            timing: evaluator.timing(),
            kernel: evaluator.backend(),
        },
        report,
    })
}

/// [`run_block_simulation`] with fault survival: transient launch faults are
/// retried in place, and a card loss goes through
/// [`ForceEvaluator::recover_device_loss`] → restore of the last block
/// checkpoint → replay. The checkpoint carries the whole hierarchy
/// (per-particle times/steps, grid origin, active-set bitmap), so a
/// recovered run is f64-bitwise identical to a fault-free one.
///
/// # Errors
/// Non-transient faults the evaluator cannot recover from, checkpoint spill
/// failures, or more than `recovery.max_recoveries` card losses.
///
/// # Panics
/// Panics on a particle-count mismatch with the evaluator.
pub fn run_block_simulation_resilient<E: ForceEvaluator>(
    evaluator: &Arc<E>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<BlockResilientOutcome, LaunchError> {
    let e0 = total_energy(system, config.eps);
    let mut recoveries: u32 = 0;

    // Initialization only mutates `system` after its evaluation succeeds,
    // so on card loss we recover the evaluator and simply try again.
    let mut sched = loop {
        match BlockScheduler::new(Arc::clone(evaluator), system, config, recovery.retry) {
            Ok(s) => break s,
            Err(e) if e.is_card_loss() && recoveries < recovery.max_recoveries => {
                recoveries += 1;
                evaluator.recover_device_loss(e)?;
            }
            Err(e) => return Err(e),
        }
    };

    let mut store = BlockCheckpointStore::new(recovery.spill.clone());
    store.save(&sched.checkpoint(system), 0)?;
    let mut iteration = 0usize;
    let mut replayed = 0usize;
    while !sched.done(system) {
        match sched.step(system) {
            Ok(()) => {
                iteration += 1;
                if iteration - store.iteration >= recovery.checkpoint_every.max(1) {
                    store.save(&sched.checkpoint(system), iteration)?;
                }
            }
            Err(e) if e.is_card_loss() && recoveries < recovery.max_recoveries => {
                recoveries += 1;
                evaluator.recover_device_loss(e)?;
                let (ckpt, restored) = store.restore()?;
                sched.restore(system, &ckpt);
                replayed += iteration - restored;
                iteration = restored;
            }
            Err(e) => return Err(e),
        }
    }

    let e1 = total_energy(system, config.eps);
    let mut timing = evaluator.timing();
    if let Some(t) = timing.as_mut() {
        t.io_seconds += store.seconds;
    }
    Ok(BlockResilientOutcome {
        outcome: SimulationOutcome {
            steps: iteration,
            final_time: system.time,
            energy_error: relative_energy_error(e1, e0),
            initial_energy: e0,
            final_energy: e1,
            timing,
            kernel: evaluator.backend(),
        },
        report: sched.into_report(),
        recoveries,
        iterations_replayed: replayed,
        checkpoint_spills: store.spills,
        spill_seconds: store.seconds,
    })
}

/// [`run_block_simulation_resilient`] on one Wormhole card.
///
/// # Errors
/// Pipeline construction failures plus the resilient-run contract.
pub fn run_device_block_simulation_resilient(
    device: &Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<BlockResilientOutcome, LaunchError> {
    let evaluator = Arc::new(SingleCardEvaluator::new(
        Arc::clone(device),
        system.len(),
        config.eps,
        config.num_cores,
    )?);
    run_block_simulation_resilient(&evaluator, system, config, recovery)
}

/// [`run_block_simulation`] with the CPU reference kernel through the same
/// evaluator seam (active sets front-permuted into the SIMD range kernel).
///
/// # Errors
/// Never fails on the CPU backend; `Result` keeps the driver surface
/// uniform.
pub fn run_cpu_block_simulation(
    system: &mut ParticleSystem,
    config: SimulationConfig,
    threads: usize,
) -> std::result::Result<BlockOutcome, LaunchError> {
    let evaluator = Arc::new(CpuForceEvaluator::new(
        ThreadedKernel::new(SimdKernel::new(config.eps), threads),
        system.len(),
    ));
    run_block_simulation(&evaluator, system, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::ic::{plummer, PlummerConfig};
    use tensix::DeviceConfig;

    fn small_config() -> SimulationConfig {
        SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 2,
            dt: 1.0 / 256.0,
            num_cores: 1,
            blocks: None,
        }
    }

    fn temp_spill(tag: &str) -> SpillConfig {
        SpillConfig::new(
            std::env::temp_dir().join(format!("nbody-ckpt-{tag}-{}.bin", std::process::id())),
        )
    }

    #[test]
    fn device_simulation_conserves_energy() {
        let mut sys = plummer(PlummerConfig { n: 128, seed: 100, ..PlummerConfig::default() });
        let dev = Device::new(0, DeviceConfig::default());
        let out = run_device_simulation(dev, &mut sys, small_config()).unwrap();
        assert_eq!(out.steps, 4);
        assert!((out.final_time - 4.0 / 256.0).abs() < 1e-12);
        // FP32 forces: energy error at the 1e-5 level over a few steps.
        assert!(out.energy_error < 1e-4, "energy error {}", out.energy_error);
        let t = out.timing.expect("device runs report timing");
        assert_eq!(t.evaluations, 5, "init + 4 steps");
        assert!(t.device_seconds > 0.0);
    }

    #[test]
    fn device_and_cpu_runs_agree() {
        let mk = || plummer(PlummerConfig { n: 96, seed: 101, ..PlummerConfig::default() });
        let cfg = small_config();

        let mut dev_sys = mk();
        let dev = Device::new(0, DeviceConfig::default());
        run_device_simulation(dev, &mut dev_sys, cfg).unwrap();

        let mut cpu_sys = mk();
        let _ = run_cpu_simulation(&mut cpu_sys, cfg, 2);

        // Same mixed-precision algorithm, different summation order: the
        // trajectories agree to FP32-commensurate accuracy over 4 steps.
        for i in 0..dev_sys.len() {
            for k in 0..3 {
                let d = (dev_sys.pos[i][k] - cpu_sys.pos[i][k]).abs();
                assert!(d < 1e-5, "particle {i} axis {k} diverged by {d}");
            }
        }
    }

    #[test]
    fn device_loss_mid_run_resumes_bitwise_identical() {
        use tensix::fault::FaultClass;

        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 4,
            dt: 1.0 / 256.0,
            num_cores: 2,
            blocks: None,
        };
        let mk = || plummer(PlummerConfig { n: 512, seed: 103, ..PlummerConfig::default() });

        let clean_dev = Device::new(0, DeviceConfig::default());
        let mut clean_sys = mk();
        let clean = run_device_simulation_resilient(
            &clean_dev,
            &mut clean_sys,
            cfg,
            RecoveryConfig::default(),
        )
        .unwrap();
        assert_eq!(clean.recoveries, 0);
        assert_eq!(clean.steps_replayed, 0);
        assert_eq!(clean.checkpoint_spills, 0, "no spill configured");

        // Launch events: initialize is #1, step i is #(i+1); kill the card
        // mid-way through the 4th step.
        let dev = Device::new(0, DeviceConfig::default());
        dev.faults().schedule(FaultClass::DeviceLoss, 5);
        let mut sys = mk();
        let out = run_device_simulation_resilient(&dev, &mut sys, cfg, RecoveryConfig::default())
            .unwrap();
        assert_eq!(out.recoveries, 1);
        assert_eq!(out.steps_replayed, 3, "rolled back to the post-init checkpoint");
        assert_eq!(dev.faults().stats().device_losses, 1);

        // Checkpoint/restart must be invisible to the physics: f64-bitwise
        // identical state and energies.
        assert_eq!(sys.pos, clean_sys.pos);
        assert_eq!(sys.vel, clean_sys.vel);
        assert_eq!(out.outcome.final_energy.to_bits(), clean.outcome.final_energy.to_bits());
        assert_eq!(out.outcome.energy_error.to_bits(), clean.outcome.energy_error.to_bits());
        // Replayed work is billed, not hidden.
        let t = out.outcome.timing.unwrap();
        let tc = clean.outcome.timing.unwrap();
        assert_eq!(t.evaluations, tc.evaluations + out.steps_replayed as u64);
    }

    #[test]
    fn device_loss_replays_at_most_checkpoint_every_steps() {
        use tensix::fault::FaultClass;

        // Sweep the loss over every step of the run, including the final
        // partial stride: the checkpoint cadence must bound the replay at
        // `checkpoint_every` everywhere (the old `step < total_steps` guard
        // was the accounting bug this pins down).
        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 3,
            dt: 1.0 / 256.0,
            num_cores: 1,
            blocks: None,
        };
        let total = cfg.cycles * cfg.steps_per_cycle;
        let recovery = RecoveryConfig { checkpoint_every: 2, ..RecoveryConfig::default() };
        for lost_step in 1..=total {
            let dev = Device::new(0, DeviceConfig::default());
            // Launch events: initialize is #1, step i is #(i+1).
            dev.faults().schedule(FaultClass::DeviceLoss, (lost_step + 1) as u64);
            let mut sys = plummer(PlummerConfig { n: 64, seed: 105, ..PlummerConfig::default() });
            let out =
                run_device_simulation_resilient(&dev, &mut sys, cfg, recovery.clone()).unwrap();
            assert_eq!(out.recoveries, 1, "loss at step {lost_step}");
            assert!(
                out.steps_replayed < recovery.checkpoint_every,
                "loss at step {lost_step}: replayed {} ≥ checkpoint_every {}",
                out.steps_replayed,
                recovery.checkpoint_every
            );
            assert_eq!(out.outcome.steps, total);
        }
    }

    #[test]
    fn repeated_device_loss_exhausts_recovery_budget() {
        use tensix::FaultConfig;

        let dev = Device::new(
            0,
            DeviceConfig {
                faults: FaultConfig { device_loss_prob: 1.0, ..FaultConfig::default() },
                ..DeviceConfig::default()
            },
        );
        let mut sys = plummer(PlummerConfig { n: 64, seed: 104, ..PlummerConfig::default() });
        let recovery = RecoveryConfig { max_recoveries: 1, ..RecoveryConfig::default() };
        let err =
            run_device_simulation_resilient(&dev, &mut sys, small_config(), recovery).unwrap_err();
        assert!(matches!(err, LaunchError::DeviceLost { .. }), "{err:?}");
    }

    #[test]
    fn cpu_simulation_reports() {
        let mut sys = plummer(PlummerConfig { n: 64, seed: 102, ..PlummerConfig::default() });
        let out = run_cpu_simulation(&mut sys, small_config(), 4);
        assert_eq!(out.kernel, "threaded");
        assert!(out.timing.is_none());
        assert!(out.energy_error < 1e-3);
        assert!(out.initial_energy < 0.0, "bound cluster");
    }

    #[test]
    fn spilled_checkpoints_restore_bitwise_and_charge_the_clock() {
        use tensix::fault::FaultClass;

        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 4,
            dt: 1.0 / 256.0,
            num_cores: 1,
            blocks: None,
        };
        let mk = || plummer(PlummerConfig { n: 256, seed: 106, ..PlummerConfig::default() });

        // In-memory reference with the same injected loss.
        let dev_mem = Device::new(0, DeviceConfig::default());
        dev_mem.faults().schedule(FaultClass::DeviceLoss, 6);
        let mut sys_mem = mk();
        let mem =
            run_device_simulation_resilient(&dev_mem, &mut sys_mem, cfg, RecoveryConfig::default())
                .unwrap();
        assert_eq!(mem.recoveries, 1);

        let spill = temp_spill("roundtrip");
        let dev = Device::new(0, DeviceConfig::default());
        dev.faults().schedule(FaultClass::DeviceLoss, 6);
        let mut sys = mk();
        let recovery = RecoveryConfig { spill: Some(spill.clone()), ..RecoveryConfig::default() };
        let out = run_device_simulation_resilient(&dev, &mut sys, cfg, recovery).unwrap();
        assert!(
            spill.checkpoints_on_disk().len() <= spill.keep_last,
            "retention must GC old spill files"
        );
        spill.cleanup();
        assert!(spill.checkpoints_on_disk().is_empty());

        assert_eq!(out.recoveries, 1);
        assert!(out.checkpoint_spills >= 2, "post-init + stride checkpoints hit disk");
        assert!(out.spill_seconds > 0.0, "spill writes must be charged");

        // Restoring through the disk file is invisible to the physics.
        assert_eq!(sys.pos, sys_mem.pos);
        assert_eq!(sys.vel, sys_mem.vel);
        assert_eq!(out.outcome.final_energy.to_bits(), mem.outcome.final_energy.to_bits());
        // The spill IO lands on the virtual clock.
        let t = out.outcome.timing.unwrap();
        let tm = mem.outcome.timing.unwrap();
        assert!((t.io_seconds - tm.io_seconds - out.spill_seconds).abs() < 1e-12);
    }

    #[test]
    fn corrupt_spill_is_rejected_on_restore() {
        let spill = temp_spill("corrupt");
        let sys = plummer(PlummerConfig { n: 32, seed: 107, ..PlummerConfig::default() });
        let mut store = CheckpointStore::new(Some(spill.clone()));
        store.save(&sys, 3).unwrap();

        // Round-trips clean first.
        let mut scratch = sys.clone();
        assert_eq!(store.restore(&mut scratch).unwrap(), 3);
        assert_eq!(scratch.pos, sys.pos);

        // Flip one payload bit: the content hash must catch it.
        let file = spill.file_for(3);
        let mut raw = std::fs::read(&file).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&file, &raw).unwrap();
        let err = store.restore(&mut scratch).unwrap_err();
        assert!(err.to_string().contains("hash mismatch"), "{err}");
        spill.cleanup();
    }

    #[test]
    fn spill_retention_keeps_last_k_files() {
        let spill = SpillConfig { keep_last: 3, ..temp_spill("retention") };
        let sys = plummer(PlummerConfig { n: 16, seed: 110, ..PlummerConfig::default() });
        let mut store = CheckpointStore::new(Some(spill.clone()));
        for step in 0..10 {
            store.save(&sys, step).unwrap();
        }
        assert_eq!(store.spills, 10);
        assert_eq!(spill.checkpoints_on_disk(), vec![7, 8, 9], "only the newest 3 survive");
        // The newest checkpoint is what an external restore finds.
        let (_, step) = latest_checkpoint(&spill).unwrap();
        assert_eq!(step, 9);
        spill.cleanup();
    }

    #[test]
    fn unwritable_spill_directory_is_a_typed_error_not_a_panic() {
        let spill = SpillConfig::new(
            std::env::temp_dir().join("nbody-no-such-dir").join("sub").join("ckpt.bin"),
        );
        let sys = plummer(PlummerConfig { n: 16, seed: 111, ..PlummerConfig::default() });
        let mut store = CheckpointStore::new(Some(spill.clone()));
        let err = store.save(&sys, 0).unwrap_err();
        assert!(
            matches!(err, LaunchError::Device(TensixError::CheckpointIo { .. })),
            "expected CheckpointIo, got {err:?}"
        );
        assert!(!err.is_transient(), "checkpoint IO failures must not be retried in place");
        // Reading a missing checkpoint is the same typed error.
        let err = latest_checkpoint(&spill).unwrap_err();
        assert!(matches!(err, LaunchError::Device(TensixError::CheckpointIo { .. })));
    }

    #[test]
    fn interrupted_run_resumes_on_a_different_backend_bitwise() {
        use tensix::fault::FaultClass;

        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 4,
            dt: 1.0 / 256.0,
            num_cores: 1,
            blocks: None,
        };
        let mk = || plummer(PlummerConfig { n: 128, seed: 112, ..PlummerConfig::default() });

        // Fault-free golden on card A's twin.
        let mut golden = mk();
        let clean_dev = Device::new(0, DeviceConfig::default());
        run_device_simulation_resilient(&clean_dev, &mut golden, cfg, RecoveryConfig::default())
            .unwrap();

        // Card A dies mid-run with no in-place recovery budget; the failure
        // surfaces, leaving the last spill on disk.
        let spill = temp_spill("migrate");
        let dev_a = Device::new(1, DeviceConfig::default());
        dev_a.faults().schedule(FaultClass::DeviceLoss, 6);
        let mut sys = mk();
        let recovery = RecoveryConfig {
            spill: Some(spill.clone()),
            max_recoveries: 0,
            checkpoint_every: 2,
            ..RecoveryConfig::default()
        };
        let err =
            run_device_simulation_resilient(&dev_a, &mut sys, cfg, recovery.clone()).unwrap_err();
        assert!(err.is_card_loss());

        // Migrate: restore the newest checkpoint and resume on card B.
        let (mut resumed, step) = latest_checkpoint(&spill).unwrap();
        assert!(step > 0 && step < cfg.cycles * cfg.steps_per_cycle);
        let dev_b = Device::new(7, DeviceConfig::default());
        let evaluator = Arc::new(
            crate::evaluator::SingleCardEvaluator::new(dev_b, resumed.len(), cfg.eps, 1).unwrap(),
        );
        let out =
            resume_simulation_resilient(&evaluator, &mut resumed, step, cfg, recovery).unwrap();
        assert_eq!(out.outcome.steps, cfg.cycles * cfg.steps_per_cycle - step);
        assert_eq!(resumed.pos, golden.pos, "migrated tail must be bitwise identical");
        assert_eq!(resumed.vel, golden.vel);
        spill.cleanup();
    }

    #[test]
    fn resilient_driver_is_backend_agnostic() {
        // The CPU evaluator through the *same* generic resilient driver:
        // no retries or recoveries, but checkpoints and accounting flow.
        let mut sys = plummer(PlummerConfig { n: 64, seed: 108, ..PlummerConfig::default() });
        let evaluator = Arc::new(CpuForceEvaluator::new(
            ThreadedKernel::new(SimdKernel::new(0.05), 2),
            sys.len(),
        ));
        let out = run_simulation_resilient(
            &evaluator,
            &mut sys,
            small_config(),
            RecoveryConfig::default(),
        )
        .unwrap();
        assert_eq!(out.outcome.kernel, "threaded");
        assert_eq!(out.recoveries, 0);
        assert!(out.outcome.timing.is_none());

        // And it matches the plain CPU run bitwise.
        let mut plain = plummer(PlummerConfig { n: 64, seed: 108, ..PlummerConfig::default() });
        let _ = run_cpu_simulation(&mut plain, small_config(), 2);
        assert_eq!(sys.pos, plain.pos);
    }
}
