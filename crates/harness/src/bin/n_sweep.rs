//! Experiment E7 — the paper's follow-up question: how does the comparison
//! evolve with the number of particles? Sweeps N through the calibrated
//! model for both codes, locating the CPU/device crossover and the
//! asymptotic speedup.

use std::fs;
use std::path::Path;

use tt_harness::{default_run, run_n_sweep, sweep_crossover};

fn main() {
    let run = default_run();
    let points = run_n_sweep(&run);

    println!("=== E7: particle-count sweep (per Hermite step) ===\n");
    println!("       N | accel (s/step) | cpu (s/step) | speedup");
    for p in &points {
        let marker = if p.n == 102_400 { "  <- paper configuration" } else { "" };
        println!(
            "  {:>6} | {:>14.5} | {:>12.5} | {:>6.2}x{marker}",
            p.n, p.accel_step_s, p.cpu_step_s, p.speedup
        );
    }
    match sweep_crossover(&points) {
        Some(n) => println!("\nCPU still wins at N <= {n}; the device wins beyond."),
        None => println!("\nthe device wins across the whole grid."),
    }
    println!(
        "small-N overhead: PCIe + host staging dominate until the 64 Tensix cores \
         have enough target tiles to amortize them."
    );

    fs::create_dir_all("results").ok();
    let mut csv = String::from("n,accel_step_s,cpu_step_s,speedup\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.4}\n",
            p.n, p.accel_step_s, p.cpu_step_s, p.speedup
        ));
    }
    fs::write(Path::new("results/n_sweep.csv"), csv).ok();
    println!("raw data written to results/n_sweep.csv");
}
