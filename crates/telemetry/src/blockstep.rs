//! Block-time-step launch accounting.
//!
//! A block-step run launches the force backend once per block iteration
//! with an *active subset* of the N particles; the launch cost scales with
//! the active count, not N. [`BlockStepReport`] is the ledger every
//! block-step driver fills in: how many launches, how much per-particle
//! force work they summed to, and how the active fraction distributed —
//! the inputs both the perf model (modeled seconds per launch) and the
//! serving layer's attribution need to bill a block-step job by the work
//! it actually dispatched instead of assuming full-N launches.

/// Number of active-fraction deciles tracked by the histogram.
pub const ACTIVE_FRACTION_BINS: usize = 10;

/// Per-run ledger of active-set launches in a block-time-step simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStepReport {
    /// Particle count of the system (the denominator of every fraction).
    pub n: usize,
    /// Block iterations executed (= backend launches).
    pub iterations: u64,
    /// Total per-particle force evaluations (Σ active-set sizes); each unit
    /// is one i-particle against all N sources.
    pub particle_evaluations: u64,
    /// Smallest block step any particle advanced by.
    pub min_dt_used: f64,
    /// Histogram of the active fraction |A|/N per launch, in ten deciles:
    /// bin `k` counts launches with `k/10 ≤ |A|/N < (k+1)/10` (a full-N
    /// launch lands in the last bin).
    pub histogram: [u64; ACTIVE_FRACTION_BINS],
}

impl BlockStepReport {
    /// Empty report for a system of `n` particles.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "report needs a particle count");
        BlockStepReport {
            n,
            iterations: 0,
            particle_evaluations: 0,
            min_dt_used: f64::INFINITY,
            histogram: [0; ACTIVE_FRACTION_BINS],
        }
    }

    /// Record one launch of `active` particles advancing by step `dt`.
    pub fn record(&mut self, active: usize, dt: f64) {
        debug_assert!(active <= self.n);
        self.iterations += 1;
        self.particle_evaluations += active as u64;
        if dt > 0.0 {
            self.min_dt_used = self.min_dt_used.min(dt);
        }
        let frac = active as f64 / self.n as f64;
        let bin = ((frac * ACTIVE_FRACTION_BINS as f64) as usize).min(ACTIVE_FRACTION_BINS - 1);
        self.histogram[bin] += 1;
    }

    /// Mean active fraction over all recorded launches (0 when none).
    #[must_use]
    pub fn mean_active_fraction(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.particle_evaluations as f64 / (self.iterations as f64 * self.n as f64)
    }

    /// The run's force work expressed in full-N launch equivalents:
    /// `particle_evaluations / n`. A shared-step run of `s` steps costs
    /// `s + 1` full equivalents (init included); the ratio of the two is
    /// the block scheme's work saving.
    #[must_use]
    pub fn full_equivalents(&self) -> f64 {
        self.particle_evaluations as f64 / self.n as f64
    }

    /// Smallest step used, or 0 when no launch advanced anyone.
    #[must_use]
    pub fn min_dt(&self) -> f64 {
        if self.min_dt_used.is_finite() {
            self.min_dt_used
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_launches_and_fractions() {
        let mut r = BlockStepReport::new(100);
        r.record(100, 0.25); // full launch → last bin
        r.record(10, 0.125); // 10% → bin 1
        r.record(1, 0.0625); // 1% → bin 0
        assert_eq!(r.iterations, 3);
        assert_eq!(r.particle_evaluations, 111);
        assert_eq!(r.histogram[9], 1);
        assert_eq!(r.histogram[1], 1);
        assert_eq!(r.histogram[0], 1);
        assert!((r.mean_active_fraction() - 111.0 / 300.0).abs() < 1e-12);
        assert!((r.full_equivalents() - 1.11).abs() < 1e-12);
        assert!((r.min_dt() - 0.0625).abs() < 1e-15);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = BlockStepReport::new(8);
        assert_eq!(r.mean_active_fraction(), 0.0);
        assert_eq!(r.full_equivalents(), 0.0);
        assert_eq!(r.min_dt(), 0.0);
    }

    #[test]
    fn zero_advance_launch_does_not_poison_min_dt() {
        let mut r = BlockStepReport::new(4);
        r.record(4, 0.0);
        assert_eq!(r.min_dt(), 0.0);
        r.record(2, 0.5);
        assert!((r.min_dt() - 0.5).abs() < 1e-15);
    }
}
