//! `tt-nbody` — command-line runner for the reproduction.
//!
//! ```text
//! tt-nbody run   [--ic plummer|king|uniform|collapse|merger|binary] [--n 512]
//!                [--backend device|tree|cpu|reference] [--integrator hermite|leapfrog|block]
//!                [--steps 32] [--dt 0.00390625] [--eps 0.01] [--cores 2]
//!                [--devices 1] [--spares 0] [--resilient] [--inject-loss 0]
//!                [--threads 4] [--seed 0]
//!                [--blocks] [--eta 0.02] [--levels 6]
//!                [--theta 0.6] [--leaf 32] [--near host|device] [--verify-direct]
//!                [--arch n150|n300|key=value,...] [--force-kernel elementwise|matrix]
//! tt-nbody validate [--n 1024]
//! tt-nbody model
//! ```
//!
//! `run` evolves a cluster and reports conservation diagnostics plus, for
//! the device backend, the virtual-time accounting. `validate` prints the
//! §3 accuracy table. `model` prints the calibrated paper-scale summary.
//!
//! With `--devices N` (N > 1) the device backend runs the resilient Hermite
//! driver over an N-card ring; `--spares` adds hot spares, and
//! `--inject-loss L` kills the last ring card at launch event `L` and then
//! verifies the surviving run against an unfaulted twin, bit for bit.
//! `--resilient` routes a single-card run through the same driver
//! (checkpoint/restart + watchdog) instead of the bare integrator.
//!
//! `--backend tree` runs the Barnes-Hut tree code: `--theta` sets the
//! opening angle, `--leaf` the leaf capacity, and `--near device` routes
//! the near-field through the tiled device pipeline (host far-field either
//! way). `--verify-direct` first compares one tree force evaluation
//! against the FP64 direct sum and fails unless the worst relative error
//! is within the θ-dependent bound — an O(N²) check meant for small N.
//!
//! `--arch` selects a device-catalog part (`n150`, `n300`, or a custom
//! `key=value` spec) for every simulated card; the catalog summary line is
//! printed before device runs. `--force-kernel matrix` runs the pairwise
//! force/jerk loop as blocked matmuls on the FPU matrix pipe instead of
//! the element-wise SFPU kernel — on the direct, resilient, and ring device
//! paths alike (failover and recovery preserve the kind); with
//! `--verify-direct` the device forces are first checked against the FP64
//! direct sum at the kernel's bound.
//!
//! `--blocks` switches the device/cpu/tree backends from the shared-step
//! Hermite loop to hierarchical block time-steps: per-particle steps from
//! the Aarseth criterion (`--eta`), quantized to power-of-two fractions of
//! `--dt` (at most `--levels` halvings), with each block iteration
//! launching only the active subset through the backend's active-set path.
//! The run reports the active-fraction ledger next to the usual
//! conservation diagnostics.

use std::sync::Arc;

use nbody::diagnostics::{relative_energy_error, total_energy, virial_ratio};
use nbody::force::{ForceKernel, ReferenceKernel, SimdKernel, ThreadedKernel};
use nbody::ic::IcKind;
use nbody::integrator::{BlockHermite, Hermite4, Integrator, Leapfrog};
use nbody::particle::ParticleSystem;
use nbody_tt::{
    run_block_simulation, run_block_simulation_resilient, run_cpu_block_simulation,
    run_device_simulation_resilient_kernel, run_ring_simulation_resilient_kernel, BlockOutcome,
    BlockStepConfig, DeviceForceKernel, DeviceForcePipeline, EvaluatorKernel, ForceEvaluator,
    ForceKernelKind, MultiDevicePipeline, RecoveryConfig, ResilientOutcome, SimulationConfig,
    SingleCardEvaluator, TreeConfig, TreeForceEvaluator,
};
use tensix::catalog::DeviceArch;
use tensix::fault::FaultClass;
use tensix::{DataFormat, Device, DeviceConfig};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: String,
    ic: String,
    n: usize,
    backend: String,
    integrator: String,
    steps: usize,
    dt: f64,
    eps: f64,
    cores: usize,
    devices: usize,
    spares: usize,
    resilient: bool,
    inject_loss: u64,
    threads: usize,
    seed: u64,
    theta: f64,
    leaf: usize,
    near: String,
    verify_direct: bool,
    arch: String,
    force_kernel: ForceKernelKind,
    blocks: bool,
    eta: f64,
    levels: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: "run".into(),
            ic: "plummer".into(),
            n: 512,
            backend: "device".into(),
            integrator: "hermite".into(),
            steps: 32,
            dt: 1.0 / 256.0,
            eps: 0.01,
            cores: 2,
            devices: 1,
            spares: 0,
            resilient: false,
            inject_loss: 0,
            threads: 4,
            seed: 0,
            theta: 0.6,
            leaf: 32,
            near: "host".into(),
            verify_direct: false,
            arch: "n300".into(),
            force_kernel: ForceKernelKind::Elementwise,
            blocks: false,
            eta: 0.02,
            levels: 6,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it.next().cloned().unwrap_or_else(|| "run".into());
    if !matches!(opts.command.as_str(), "run" | "validate" | "model") {
        return Err(format!("unknown command '{}'; expected run|validate|model", opts.command));
    }
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--ic" => opts.ic = value()?,
            "--n" => opts.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--backend" => opts.backend = value()?,
            "--integrator" => opts.integrator = value()?,
            "--steps" => opts.steps = value()?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--dt" => opts.dt = value()?.parse().map_err(|e| format!("--dt: {e}"))?,
            "--eps" => opts.eps = value()?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--cores" => opts.cores = value()?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--devices" => {
                opts.devices = value()?.parse().map_err(|e| format!("--devices: {e}"))?;
            }
            "--spares" => {
                opts.spares = value()?.parse().map_err(|e| format!("--spares: {e}"))?;
            }
            "--resilient" => opts.resilient = true,
            "--inject-loss" => {
                opts.inject_loss = value()?.parse().map_err(|e| format!("--inject-loss: {e}"))?;
            }
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--theta" => opts.theta = value()?.parse().map_err(|e| format!("--theta: {e}"))?,
            "--leaf" => opts.leaf = value()?.parse().map_err(|e| format!("--leaf: {e}"))?,
            "--near" => opts.near = value()?,
            "--verify-direct" => opts.verify_direct = true,
            "--arch" => opts.arch = value()?,
            "--force-kernel" => opts.force_kernel = value()?.parse()?,
            "--blocks" => opts.blocks = true,
            "--eta" => opts.eta = value()?.parse().map_err(|e| format!("--eta: {e}"))?,
            "--levels" => {
                opts.levels = value()?.parse().map_err(|e| format!("--levels: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn build_system(opts: &Options) -> Result<ParticleSystem, String> {
    Ok(opts.ic.parse::<IcKind>()?.build(opts.n, opts.seed))
}

fn run_with_kernel<K: ForceKernel>(opts: &Options, sys: &mut ParticleSystem, kernel: K) {
    let e0 = total_energy(sys, opts.eps);
    match opts.integrator.as_str() {
        "leapfrog" => {
            Leapfrog::new(kernel).evolve(sys, opts.steps as f64 * opts.dt, opts.dt);
        }
        "block" => {
            let integ = BlockHermite::new(kernel, 0.01, opts.dt * 4.0, 6);
            let stats = integ.evolve(sys, opts.steps as f64 * opts.dt);
            println!(
                "block stats: {} iterations, {} particle evaluations, min dt {:.2e}",
                stats.iterations, stats.particle_evaluations, stats.min_dt_used
            );
        }
        _ => {
            Hermite4::new(kernel).evolve(sys, opts.steps as f64 * opts.dt, opts.dt);
        }
    }
    let e1 = total_energy(sys, opts.eps);
    println!(
        "t = {:.5}, |dE/E| = {:.3e}, Q = {:.3}",
        sys.time,
        relative_energy_error(e1, e0),
        virial_ratio(sys, opts.eps)
    );
}

/// The resilient driver's step schedule for the CLI: `--steps` Hermite
/// steps, checkpointed every [`RecoveryConfig::default`] stride.
fn sim_config(opts: &Options) -> SimulationConfig {
    SimulationConfig {
        eps: opts.eps,
        cycles: opts.steps,
        steps_per_cycle: 1,
        dt: opts.dt,
        num_cores: opts.cores,
        blocks: opts.blocks.then_some(BlockStepConfig { eta: opts.eta, levels: opts.levels }),
    }
}

/// Print the block-step ledger next to the conservation diagnostics.
fn report_block(out: &BlockOutcome) {
    println!(
        "block steps ({}): {} iterations to t = {:.5}, |dE/E| = {:.3e}",
        out.outcome.kernel, out.outcome.steps, out.outcome.final_time, out.outcome.energy_error
    );
    println!(
        "active-set ledger: {:.1} full-N equivalents over {} launches \
         (mean active fraction {:.3}, min dt {:.2e})",
        out.report.full_equivalents(),
        out.report.iterations,
        out.report.mean_active_fraction(),
        out.report.min_dt()
    );
    if let Some(t) = out.outcome.timing {
        println!(
            "card occupancy {:.3} ms over {} active-set launches",
            t.device_seconds * 1e3,
            t.evaluations
        );
    }
}

fn report_resilient(out: &ResilientOutcome) {
    println!(
        "resilient run ({}): {} steps to t = {:.5}, |dE/E| = {:.3e}",
        out.outcome.kernel, out.outcome.steps, out.outcome.final_time, out.outcome.energy_error
    );
    println!(
        "failovers: {} | recoveries: {} | steps replayed: {}",
        out.failovers, out.recoveries, out.steps_replayed
    );
    if let Some(t) = out.outcome.timing {
        println!(
            "card occupancy {:.3} ms over {} evaluations ({} retries, {} partial redos)",
            t.device_seconds * 1e3,
            t.evaluations,
            t.retries,
            t.partial_redos
        );
    }
}

/// The `--devices N` ring path: the generic resilient Hermite driver over
/// an N-card ring with `--spares` hot spares. `--inject-loss L` kills the
/// last ring card at launch event `L`, then re-runs an unfaulted twin and
/// verifies the surviving run against it bit for bit.
fn run_ring(opts: &Options, sys: &mut ParticleSystem) -> Result<(), String> {
    let arch = DeviceArch::parse(&opts.arch)?;
    let mk_devices = |base: usize, count: usize| -> Vec<Arc<Device>> {
        (base..base + count).map(|id| Device::new(id, arch.device_config())).collect()
    };
    // One ring leg: shared-step resilient driver or the block scheduler
    // over the same ring pipeline, either way honoring `--force-kernel`.
    let run_leg = |devices: &[Arc<Device>],
                   spares: &[Arc<Device>],
                   sys: &mut ParticleSystem,
                   quiet: bool|
     -> Result<nbody_tt::SimulationOutcome, String> {
        let config = sim_config(opts);
        if opts.blocks {
            let ring = Arc::new(
                MultiDevicePipeline::with_spares_kernel(
                    devices,
                    spares,
                    sys.len(),
                    opts.eps,
                    opts.cores,
                    opts.force_kernel,
                )
                .map_err(|e| e.to_string())?,
            );
            let out = run_block_simulation_resilient(&ring, sys, config, RecoveryConfig::default())
                .map_err(|e| e.to_string())?;
            if !quiet {
                report_block(&BlockOutcome {
                    outcome: out.outcome.clone(),
                    report: out.report.clone(),
                });
            }
            Ok(out.outcome)
        } else {
            let out = run_ring_simulation_resilient_kernel(
                devices,
                spares,
                sys,
                config,
                RecoveryConfig::default(),
                opts.force_kernel,
            )
            .map_err(|e| e.to_string())?;
            if !quiet {
                report_resilient(&out);
            }
            Ok(out.outcome)
        }
    };

    let devices = mk_devices(0, opts.devices);
    let spares = mk_devices(opts.devices, opts.spares);
    if opts.inject_loss > 0 {
        devices[opts.devices - 1].faults().schedule(FaultClass::DeviceLoss, opts.inject_loss);
        println!(
            "injecting device loss on card {} at launch event {}",
            opts.devices - 1,
            opts.inject_loss
        );
    }
    println!("{} devices, {} spares:", opts.devices, opts.spares);
    let out = run_leg(&devices, &spares, sys, false)?;

    if opts.inject_loss > 0 {
        let mut clean_sys = build_system(opts)?;
        let clean = run_leg(&mk_devices(0, opts.devices), &[], &mut clean_sys, true)?;
        let same = sys
            .pos
            .iter()
            .chain(sys.vel.iter())
            .zip(clean_sys.pos.iter().chain(clean_sys.vel.iter()))
            .all(|(a, b)| (0..3).all(|k| a[k].to_bits() == b[k].to_bits()))
            && out.final_energy.to_bits() == clean.final_energy.to_bits();
        println!("bitwise-identical to unfaulted run: {same}");
        if !same {
            return Err("faulted ring run diverged from the unfaulted twin".into());
        }
    }
    Ok(())
}

/// Above this N the CLI skips the O(N²) energy diagnostic around a tree
/// run; the tree itself scales as O(N log N) and must not be gated on a
/// quadratic host sum at N ≥ 1M.
const ENERGY_CHECK_MAX_N: usize = 32_768;

/// One tree force evaluation against the FP64 direct sum: worst
/// rms-normalized acceleration error must sit inside the θ-dependent
/// monopole bound (plus an FP32 allowance when the near-field runs on the
/// device). O(N²) — intended for the small-N CI smoke.
fn verify_tree_against_direct(
    eval: &TreeForceEvaluator,
    sys: &ParticleSystem,
    eps: f64,
) -> Result<(), String> {
    let tree_f = eval.evaluate_checked(sys).map_err(|e| e.to_string())?;
    let reference = ReferenceKernel::new(eps).compute(sys);
    let typical =
        (reference.acc.iter().map(|a| a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sum::<f64>()
            / sys.len() as f64)
            .sqrt()
            .max(f64::MIN_POSITIVE);
    let mut worst = 0.0f64;
    for i in 0..sys.len() {
        let mut d2 = 0.0;
        for k in 0..3 {
            let d = tree_f.acc[i][k] - reference.acc[i][k];
            d2 += d * d;
        }
        worst = worst.max(d2.sqrt() / typical);
    }
    let theta = eval.theta();
    let fp32_allowance = if eval.backend().ends_with("hybrid") { 5e-3 } else { 0.0 };
    let bound = (theta * theta).max(1e-9) + fp32_allowance;
    if worst <= bound {
        println!("tree-vs-direct agreement: PASS (worst rel err {worst:.3e} <= bound {bound:.3e})");
        Ok(())
    } else {
        println!("tree-vs-direct agreement: FAIL (worst rel err {worst:.3e} > bound {bound:.3e})");
        Err(format!("tree force error {worst:.3e} exceeds bound {bound:.3e}"))
    }
}

/// The `--backend tree` path: Barnes-Hut evaluator behind the standard
/// integrator loop, with the tree-phase cost buckets reported afterwards.
fn run_tree(opts: &Options, sys: &mut ParticleSystem) -> Result<(), String> {
    let cfg = TreeConfig { theta: opts.theta, leaf_capacity: opts.leaf, threads: opts.threads };
    let eval = match opts.near.as_str() {
        "host" => Arc::new(TreeForceEvaluator::host(sys.len(), opts.eps, cfg)),
        "device" => {
            let device = Device::new(0, DeviceArch::parse(&opts.arch)?.device_config());
            Arc::new(TreeForceEvaluator::hybrid(device, sys.len(), opts.eps, opts.cores, cfg))
        }
        other => return Err(format!("unknown --near '{other}'; expected host|device")),
    };
    println!("tree backend: {} θ = {} leaf = {}", eval.backend(), opts.theta, opts.leaf);
    if opts.verify_direct {
        verify_tree_against_direct(&eval, sys, opts.eps)?;
    }
    if opts.blocks {
        let out = run_block_simulation(&eval, sys, sim_config(opts)).map_err(|e| e.to_string())?;
        report_block(&out);
        report_tree_cost(&eval);
        return Ok(());
    }
    let kernel = EvaluatorKernel::new(Arc::clone(&eval));
    if sys.len() <= ENERGY_CHECK_MAX_N {
        run_with_kernel(opts, sys, kernel);
    } else {
        let wall = std::time::Instant::now();
        let steps = Hermite4::new(kernel).evolve(sys, opts.steps as f64 * opts.dt, opts.dt);
        println!(
            "t = {:.5} after {} steps in {:.2} s wall (energy check skipped at n > {})",
            sys.time,
            steps,
            wall.elapsed().as_secs_f64(),
            ENERGY_CHECK_MAX_N
        );
    }
    report_tree_cost(&eval);
    Ok(())
}

/// Print the accumulated tree-phase cost buckets.
fn report_tree_cost(eval: &TreeForceEvaluator) {
    let cost = eval.tree_cost();
    println!(
        "tree cost: build {:.3} s walk {:.3} s near {:.3} s over {} evaluations",
        cost.build_seconds, cost.walk_seconds, cost.near_seconds, cost.evaluations
    );
    println!(
        "tree interactions: {} far + {} near ({:.1}% far), {:.0} per evaluation",
        cost.far_interactions,
        cost.near_interactions,
        100.0 * cost.far_fraction(),
        cost.interactions_per_eval()
    );
}

/// One pipeline force evaluation against the FP64 direct sum. The bound is
/// the kernel's own: paper tolerances for the element-wise SFPU kernel; 2×
/// those for the matrix-pipe kernel, whose decomposed quadratic forms
/// amplify FP32 rounding at the closest pairs (see the pipeline tests).
fn verify_device_against_direct(
    pipeline: &DeviceForcePipeline,
    sys: &ParticleSystem,
    opts: &Options,
) -> Result<(), String> {
    let dev = pipeline.evaluate(sys).map_err(|e| e.to_string())?;
    let reference = ReferenceKernel::new(opts.eps).compute(sys);
    let cmp = nbody::accuracy::compare_forces(&reference, &dev);
    let scale = match pipeline.kernel_kind() {
        ForceKernelKind::Elementwise => 1.0,
        ForceKernelKind::Matrix => 2.0,
    };
    let (acc_bound, jerk_bound) =
        (scale * nbody::accuracy::ACC_TOLERANCE, scale * nbody::accuracy::JERK_TOLERANCE);
    let ok = cmp.max_acc_error <= acc_bound && cmp.max_jerk_error <= jerk_bound;
    let verdict = if ok { "PASS" } else { "FAIL" };
    println!(
        "device-vs-direct accuracy: {verdict} ({} kernel: acc err {:.3e} <= {acc_bound:.1e}, \
         jerk err {:.3e} <= {jerk_bound:.1e})",
        pipeline.kernel_kind().name(),
        cmp.max_acc_error,
        cmp.max_jerk_error
    );
    if ok {
        Ok(())
    } else {
        Err(format!(
            "device force error (acc {:.3e}, jerk {:.3e}) exceeds the {} bound",
            cmp.max_acc_error,
            cmp.max_jerk_error,
            pipeline.kernel_kind().name()
        ))
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let arch = DeviceArch::parse(&opts.arch)?;
    let mut sys = build_system(opts)?;
    println!(
        "{}-body {} cluster, backend {} ({}), integrator {}",
        opts.n, opts.ic, opts.backend, opts.cores, opts.integrator
    );
    if opts.backend == "device" {
        println!("{}", arch.summary());
        if opts.cores > arch.cores_per_chip() {
            return Err(format!(
                "--cores {} exceeds the {} grid ({} cores per chip)",
                opts.cores,
                arch.name,
                arch.cores_per_chip()
            ));
        }
    }
    if opts.force_kernel == ForceKernelKind::Matrix && opts.backend != "device" {
        return Err("--force-kernel matrix drives the device backend".into());
    }
    if opts.blocks && opts.backend == "reference" {
        return Err("--blocks drives the device|cpu|tree backends \
             (use --integrator block for the in-crate reference scheduler)"
            .into());
    }
    match opts.backend.as_str() {
        "device" if opts.devices > 1 => run_ring(opts, &mut sys)?,
        "device" if opts.resilient => {
            let device = Device::new(0, arch.device_config());
            if opts.inject_loss > 0 {
                device.faults().schedule(FaultClass::DeviceLoss, opts.inject_loss);
            }
            if opts.blocks {
                let evaluator = Arc::new(
                    SingleCardEvaluator::new_with_kernel(
                        Arc::clone(&device),
                        sys.len(),
                        opts.eps,
                        opts.cores,
                        opts.force_kernel,
                    )
                    .map_err(|e| e.to_string())?,
                );
                let out = run_block_simulation_resilient(
                    &evaluator,
                    &mut sys,
                    sim_config(opts),
                    RecoveryConfig::default(),
                )
                .map_err(|e| e.to_string())?;
                report_block(&BlockOutcome {
                    outcome: out.outcome.clone(),
                    report: out.report.clone(),
                });
                println!(
                    "recoveries: {} | iterations replayed: {}",
                    out.recoveries, out.iterations_replayed
                );
            } else {
                let out = run_device_simulation_resilient_kernel(
                    &device,
                    &mut sys,
                    sim_config(opts),
                    RecoveryConfig::default(),
                    opts.force_kernel,
                )
                .map_err(|e| e.to_string())?;
                report_resilient(&out);
            }
        }
        "device" => {
            let device = Device::new(0, arch.device_config());
            let pipeline = DeviceForcePipeline::new_with_kernel(
                device,
                opts.n,
                opts.eps,
                opts.cores,
                DataFormat::Float32,
                opts.force_kernel,
            )
            .map_err(|e| e.to_string())?;
            if opts.verify_direct {
                verify_device_against_direct(&pipeline, &sys, opts)?;
            }
            if opts.blocks {
                let evaluator = Arc::new(pipeline);
                let out = run_block_simulation(&evaluator, &mut sys, sim_config(opts))
                    .map_err(|e| e.to_string())?;
                report_block(&out);
            } else {
                let kernel = DeviceForceKernel::new(pipeline);
                run_with_kernel(opts, &mut sys, kernel);
            }
        }
        "tree" => run_tree(opts, &mut sys)?,
        "cpu" if opts.blocks => {
            let out = run_cpu_block_simulation(&mut sys, sim_config(opts), opts.threads)
                .map_err(|e| e.to_string())?;
            report_block(&out);
        }
        "cpu" => {
            run_with_kernel(
                opts,
                &mut sys,
                ThreadedKernel::new(SimdKernel::new(opts.eps), opts.threads),
            );
        }
        "reference" => run_with_kernel(opts, &mut sys, ReferenceKernel::new(opts.eps)),
        other => return Err(format!("unknown backend '{other}'")),
    }
    Ok(())
}

fn cmd_validate(opts: &Options) -> Result<(), String> {
    let device = Device::new(0, DeviceConfig::default());
    let rows = nbody_tt::validation_suite(&device, opts.n.max(512)).map_err(|e| e.to_string())?;
    println!("{}", nbody_tt::validate::format_table(&rows));
    if rows.iter().all(nbody_tt::ValidationRow::passes) {
        println!("all rows within the paper's tolerances.");
        Ok(())
    } else {
        Err("validation failed".into())
    }
}

fn cmd_model() {
    let run = nbody_tt::paper_run();
    println!("calibrated paper-scale model (N = {}, {} steps):", run.n, run.steps);
    println!("  accelerated time-to-solution: {:.1} s (paper 301.40)", run.accel_seconds());
    println!("  CPU time-to-solution:         {:.1} s (paper 672.90)", run.cpu_seconds());
    println!("  speedup:                      {:.2}x (paper 2.23x)", run.speedup());
    println!("  accelerated energy:           {:.2} kJ (paper 71.56)", run.accel_energy() / 1e3);
    println!("  CPU energy:                   {:.2} kJ (paper 128.89)", run.cpu_energy() / 1e3);
    println!("  energy ratio:                 {:.2}x (paper 1.80x)", run.energy_ratio());
    println!(
        "  broadcast-optimized projection: {:.1} s ({:.2}x over CPU)",
        run.accel_seconds_optimized(),
        run.cpu_seconds() / run.accel_seconds_optimized()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: tt-nbody run|validate|model [--flags]  (see module docs)");
            std::process::exit(2);
        }
    };
    let result = match opts.command.as_str() {
        "validate" => cmd_validate(&opts),
        "model" => {
            cmd_model();
            Ok(())
        }
        _ => cmd_run(&opts),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse_args(&args(&["run"])).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn parse_full_flags() {
        let o = parse_args(&args(&[
            "run",
            "--ic",
            "king",
            "--n",
            "1000",
            "--backend",
            "cpu",
            "--integrator",
            "block",
            "--steps",
            "10",
            "--dt",
            "0.001",
            "--eps",
            "0.05",
            "--cores",
            "4",
            "--devices",
            "2",
            "--spares",
            "1",
            "--resilient",
            "--inject-loss",
            "3",
            "--threads",
            "8",
            "--seed",
            "7",
            "--theta",
            "0.45",
            "--leaf",
            "16",
            "--near",
            "device",
            "--verify-direct",
            "--arch",
            "n150",
            "--force-kernel",
            "matrix",
            "--blocks",
            "--eta",
            "0.01",
            "--levels",
            "8",
        ]))
        .unwrap();
        assert_eq!(o.ic, "king");
        assert_eq!(o.n, 1000);
        assert_eq!(o.backend, "cpu");
        assert_eq!(o.integrator, "block");
        assert_eq!(o.steps, 10);
        assert!((o.dt - 0.001).abs() < 1e-12);
        assert_eq!(o.devices, 2);
        assert_eq!(o.spares, 1);
        assert!(o.resilient);
        assert_eq!(o.inject_loss, 3);
        assert_eq!(o.seed, 7);
        assert!((o.theta - 0.45).abs() < 1e-12);
        assert_eq!(o.leaf, 16);
        assert_eq!(o.near, "device");
        assert!(o.verify_direct);
        assert_eq!(o.arch, "n150");
        assert_eq!(o.force_kernel, ForceKernelKind::Matrix);
        assert!(o.blocks);
        assert!((o.eta - 0.01).abs() < 1e-12);
        assert_eq!(o.levels, 8);
    }

    #[test]
    fn matrix_kernel_device_run_verifies() {
        let o = Options {
            n: 128,
            steps: 2,
            cores: 1,
            // The 2x matrix accuracy budget is pinned at eps = 0.05 (the
            // accuracy suite's softening); the default 0.01 admits draws
            // whose closest pair lands marginally outside it at small n.
            eps: 0.05,
            arch: "n150".into(),
            force_kernel: ForceKernelKind::Matrix,
            verify_direct: true,
            ..Options::default()
        };
        cmd_run(&o).unwrap();
        // The matrix kernel now rides the ring and the resilient driver too
        // (the kind threads through failover and recovery).
        cmd_run(&Options { devices: 2, verify_direct: false, ..o.clone() }).unwrap();
        cmd_run(&Options { resilient: true, verify_direct: false, ..o.clone() }).unwrap();
        // But it stays a device kernel: CPU/tree backends reject it.
        assert!(cmd_run(&Options { backend: "cpu".into(), ..o.clone() }).is_err());
        // Unknown parts and oversubscribed grids are typed errors.
        assert!(cmd_run(&Options { arch: "p100".into(), ..o.clone() }).is_err());
        assert!(cmd_run(&Options { cores: 80, ..o }).is_err());
    }

    #[test]
    fn block_step_runs_across_backends() {
        let o = Options { n: 192, steps: 4, cores: 1, blocks: true, ..Options::default() };
        cmd_run(&o).unwrap();
        cmd_run(&Options { backend: "cpu".into(), threads: 2, ..o.clone() }).unwrap();
        cmd_run(&Options { backend: "tree".into(), threads: 1, ..o.clone() }).unwrap();
        cmd_run(&Options { resilient: true, ..o.clone() }).unwrap();
        cmd_run(&Options { devices: 2, ..o.clone() }).unwrap();
        // The in-crate reference path keeps its own block integrator flag.
        assert!(cmd_run(&Options { backend: "reference".into(), ..o }).is_err());
    }

    #[test]
    fn tree_backend_runs_and_verifies_against_direct() {
        let o = Options {
            backend: "tree".into(),
            n: 384,
            steps: 2,
            verify_direct: true,
            threads: 1,
            ..Options::default()
        };
        cmd_run(&o).unwrap();
        // Hybrid near-field rides the device pipeline; same verification.
        let o = Options { near: "device".into(), cores: 1, ..o };
        cmd_run(&o).unwrap();
        // Unknown near-field mode is a parse-adjacent error, not a panic.
        let o = Options { near: "gpu".into(), ..o };
        assert!(cmd_run(&o).is_err());
    }

    #[test]
    fn ring_run_with_injected_loss_survives_and_verifies() {
        // The CLI's own twin-run bitwise check: a 2-card ring with a spare
        // and a mid-run loss must complete (and verify) end to end.
        let o = Options {
            n: 256,
            steps: 4,
            devices: 2,
            spares: 1,
            inject_loss: 2,
            cores: 1,
            ..Options::default()
        };
        cmd_run(&o).unwrap();
    }

    #[test]
    fn parse_rejects_unknowns() {
        assert!(parse_args(&args(&["fly"])).is_err());
        assert!(parse_args(&args(&["run", "--bogus", "1"])).is_err());
        assert!(parse_args(&args(&["run", "--n"])).is_err());
        assert!(parse_args(&args(&["run", "--n", "abc"])).is_err());
    }

    #[test]
    fn all_ics_build() {
        for ic in ["plummer", "king", "uniform", "collapse", "merger", "binary"] {
            let o = Options { ic: ic.into(), n: 64, ..Options::default() };
            let s = build_system(&o).unwrap();
            assert_eq!(s.len(), 64, "{ic}");
        }
        assert!(build_system(&Options { ic: "nope".into(), ..Options::default() }).is_err());
    }
}
