//! `tt-smi`-style card power sampler.
//!
//! "We record the power usage of the four accelerators at roughly one-second
//! intervals using the manufacturer system management interface tt-smi." The
//! sampler polls every installed card's power timeline at a fixed interval
//! (with optional phase jitter per card, since a userspace poller never
//! lands exactly on the second) and emits one [`SampleSeries`] per device.

use std::sync::Arc;

use tensix::Device;

use crate::sample::SampleSeries;

/// The tt-smi-like poller over a set of cards.
pub struct TtSmiSampler {
    devices: Vec<Arc<Device>>,
    /// Sampling interval, seconds (≈1 Hz in the paper).
    pub interval: f64,
}

impl TtSmiSampler {
    /// Poller over `devices` at `interval` seconds.
    ///
    /// # Panics
    /// Panics on a non-positive interval or no devices.
    #[must_use]
    pub fn new(devices: Vec<Arc<Device>>, interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        assert!(!devices.is_empty(), "need at least one device to sample");
        TtSmiSampler { devices, interval }
    }

    /// Sample every card over the virtual window `[0, duration)`, producing
    /// one series per device labelled `device{id}`.
    #[must_use]
    pub fn sample_job(&self, duration: f64) -> Vec<SampleSeries> {
        self.devices
            .iter()
            .map(|dev| {
                let mut series = SampleSeries::new(format!("device{}", dev.id()));
                // Small deterministic per-device phase offset (userspace
                // pollers drift), keeps the four Fig.-4 traces from lining
                // up artificially.
                let phase = 0.05 * (dev.id() as f64 + 1.0) / self.devices.len() as f64;
                let mut t = phase;
                while t < duration {
                    series.push(t, dev.power_at(t));
                    t += self.interval;
                }
                series
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensix::{DeviceConfig, PowerState};

    fn four_cards() -> Vec<Arc<Device>> {
        (0..4).map(|id| Device::new(id, DeviceConfig { seed: 99, ..Default::default() })).collect()
    }

    #[test]
    fn one_series_per_card_at_1hz() {
        let cards = four_cards();
        for (i, d) in cards.iter().enumerate() {
            let state = if i == 3 { PowerState::ComputeActive } else { PowerState::PoweredUnused };
            d.record_power(state, 100.0);
        }
        let sampler = TtSmiSampler::new(cards, 1.0);
        let series = sampler.sample_job(100.0);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert!((99..=101).contains(&s.samples.len()), "{} samples", s.samples.len());
        }
        // The active card (device 3) draws visibly more.
        let unused_peak = series[0].peak();
        let active_peak = series[3].peak();
        assert!(unused_peak < 20.0, "unused card peak {unused_peak}");
        assert!(active_peak > 30.0, "active card peak {active_peak}");
        assert_eq!(series[3].label, "device3");
    }

    #[test]
    fn idle_cards_sample_in_band() {
        let cards = four_cards();
        let sampler = TtSmiSampler::new(cards, 1.0);
        let series = sampler.sample_job(50.0);
        for s in series {
            for sample in s.samples {
                assert!((10.0..=11.0).contains(&sample.watts), "{}", sample.watts);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = TtSmiSampler::new(four_cards(), 0.0);
    }
}
