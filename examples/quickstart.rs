//! Quickstart: evolve a small star cluster with the force kernel offloaded
//! to the (simulated) Tenstorrent Wormhole.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tt_nbody::prelude::*;

use nbody::diagnostics::{relative_energy_error, total_energy, virial_ratio};
use nbody::ic::PlummerConfig;

fn main() {
    // 1. Sample an equilibrium Plummer cluster (Hénon units: G = M = 1).
    let n = 512;
    let mut cluster = plummer(PlummerConfig { n, seed: 42, ..PlummerConfig::default() });
    println!("sampled a {n}-body Plummer sphere, virial ratio {:.3}", virial_ratio(&cluster, 0.0));

    // 2. Bring up a Wormhole card (CreateDevice resets it — on the paper's
    //    machine this step failed for 24 of 50 jobs; here the injector is
    //    off by default).
    let device = create_device(0, DeviceConfig::default()).expect("device reset");
    println!("device {} up: {} Tensix cores", device.id(), device.grid().num_cores());

    // 3. Build the force pipeline: Fig. 2 tile layout, read/compute/write
    //    kernels, FP32 math on the SFPU.
    let softening = 0.01;
    let cores = 2;
    let pipeline = DeviceForcePipeline::new(device, n, softening, cores).expect("pipeline");
    let kernel = DeviceForceKernel::new(pipeline);

    // 4. Evolve with the 4th-order Hermite integrator — prediction and
    //    correction in FP64 on the host, force and jerk in FP32 on the
    //    device (the paper's mixed-precision split).
    let e0 = total_energy(&cluster, softening);
    let integ = Hermite4::new(kernel);
    let steps = integ.evolve(&mut cluster, 0.05, 1.0 / 256.0);
    let e1 = total_energy(&cluster, softening);

    println!("evolved {steps} Hermite steps to t = {:.4}", cluster.time);
    println!("relative energy error: {:.2e}", relative_energy_error(e1, e0));

    // 5. Device-side accounting from the run.
    let timing = integ.kernel().pipeline().timing();
    println!(
        "device force evaluations: {} ({:.3} ms device time, {:.3} ms PCIe)",
        timing.evaluations,
        timing.device_seconds * 1e3,
        timing.io_seconds * 1e3
    );
}
