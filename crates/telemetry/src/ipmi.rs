//! IPMI DCMI whole-server power reading.
//!
//! The paper also monitors total server power with
//! `ipmitool dcmi power reading`, but excludes it from the analysis because
//! the temporary 4U host — built to carry multiple high-end GPUs — has a
//! high baseline draw. The model reproduces that: chassis baseline (fans,
//! PSU losses, drives, NICs) plus the measured rails.

/// A DCMI power meter over the whole chassis.
pub struct DcmiPowerMeter {
    /// Chassis baseline, W — high for the paper's 4U GPU server.
    pub baseline_w: f64,
    /// PSU efficiency (meter reads AC input; rails are DC).
    pub psu_efficiency: f64,
}

impl Default for DcmiPowerMeter {
    fn default() -> Self {
        DcmiPowerMeter { baseline_w: 250.0, psu_efficiency: 0.92 }
    }
}

impl DcmiPowerMeter {
    /// AC power reading given the summed DC rail power at an instant.
    #[must_use]
    pub fn reading(&self, rail_watts: f64) -> f64 {
        self.baseline_w + rail_watts / self.psu_efficiency
    }

    /// Fraction of the reading that is baseline at a given rail power —
    /// the quantity that made the paper discard this channel.
    #[must_use]
    pub fn baseline_fraction(&self, rail_watts: f64) -> f64 {
        self.baseline_w / self.reading(rail_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_dominates_modest_loads() {
        let meter = DcmiPowerMeter::default();
        // The accelerated run's ≈237 W of measured rails reads ≈508 W at
        // the wall: over half the signal is chassis baseline.
        let reading = meter.reading(237.0);
        assert!((500.0..520.0).contains(&reading), "reading {reading}");
        assert!(meter.baseline_fraction(237.0) > 0.45);
    }

    #[test]
    fn reading_monotonic_in_load() {
        let meter = DcmiPowerMeter::default();
        assert!(meter.reading(100.0) < meter.reading(200.0));
        assert_eq!(meter.reading(0.0), 250.0);
    }
}
