//! # tt-telemetry — the paper's measurement substrate
//!
//! Everything Section 4 of the paper uses to produce its figures, as
//! simulation-backed equivalents: a [`ttsmi`] card power sampler (1 Hz), a
//! [`rapl`] package-energy counter with the 32-bit overflow quirk and both
//! the naive and `perf stat`-style readers, an [`ipmi`] whole-server meter
//! (with the high 4U baseline that made the paper discard it), [`csvio`]
//! persistence of timestamped samples, discrete [`energy`] integration over
//! the simulation window, and the [`campaign`] runner that wraps each
//! simulation in device resets and 120-second sleeps — including the
//! reset-failure census (26 of 50 accelerated jobs completing).
//!
//! ## Observability integration
//!
//! The measurement substrate also carries the device-trace layer's outputs
//! (the `tt-trace` crate): [`csvio`] dumps a `tt_trace::MetricsRegistry`
//! next to the power CSVs ([`csvio::write_metrics_csv`]) and renders
//! per-job census CSVs whose rows carry cycle-level [`retry::RetryCost`]
//! attribution and CB stall counters ([`csvio::jobs_to_csv`] documents the
//! schema). Campaign [`campaign::JobRecord`]s derive those columns purely
//! from already-drawn quantities, so census reproduction stays
//! byte-identical with observability on.

#![warn(missing_docs)]

pub mod attribution;
pub mod blockstep;
pub mod campaign;
pub mod csvio;
pub mod energy;
pub mod ipmi;
pub mod profile;
pub mod rapl;
pub mod retry;
pub mod sample;
pub mod serving;
pub mod stats;
pub mod tree;
pub mod ttsmi;

pub use attribution::{
    attribute, rollup_by_class, rollup_by_tenant, AttributionRollup, JobAttribution,
};
pub use blockstep::{BlockStepReport, ACTIVE_FRACTION_BINS};
pub use campaign::{
    census, run_campaign, run_job, successes, CampaignCensus, FailurePhase, FaultPolicy, JobKind,
    JobOutcome, JobRecord, JobSpec,
};
pub use energy::{integrate_samples, integrate_samples_trapezoid};
pub use profile::HostPowerProfile;
pub use rapl::{read_energy_naive, read_energy_perf, RaplDomain, RAPL_UNIT_J, RAPL_WRAP};
pub use retry::RetryCost;
pub use sample::{PowerSample, SampleSeries};
pub use serving::{JobDisposition, ServedJob, ServingCensus, TenantCensus};
pub use stats::{max, mean, min, percentile, standard_normal, std_dev, Histogram};
pub use tree::TreeCost;
pub use ttsmi::TtSmiSampler;
