//! Full mixed-precision simulations with the device in the loop.
//!
//! Drives the 4th-order Hermite integrator with the Wormhole force pipeline
//! — prediction/correction in FP64 on the host, force and jerk in FP32 on
//! the device — and reports both physics diagnostics and virtual-time
//! accounting, mirroring the paper's representative-simulation structure
//! (N particles, a number of time cycles each made of Hermite steps).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use nbody::diagnostics::{relative_energy_error, total_energy};
use nbody::force::{ForceKernel, SimdKernel, ThreadedKernel};
use nbody::integrator::{Hermite4, Integrator};
use nbody::particle::ParticleSystem;
use tensix::{Device, Result, TensixError};
use ttmetal::LaunchError;

use crate::pipeline::{DeviceForceKernel, DeviceForcePipeline, PipelineTiming, RetryPolicy};

/// Configuration of a device-accelerated simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Plummer softening (must be positive for the device kernel).
    pub eps: f64,
    /// Time cycles (outer loop, as in the paper's "ten time cycles").
    pub cycles: usize,
    /// Hermite steps per cycle.
    pub steps_per_cycle: usize,
    /// Fixed step size in N-body time units.
    pub dt: f64,
    /// Tensix cores to use.
    pub num_cores: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            eps: 0.01,
            cycles: 10,
            steps_per_cycle: 4,
            dt: 1.0 / 512.0,
            num_cores: 4,
        }
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Steps executed.
    pub steps: usize,
    /// Final simulation time (N-body units).
    pub final_time: f64,
    /// Relative energy error |ΔE/E₀| over the run.
    pub energy_error: f64,
    /// Initial total energy.
    pub initial_energy: f64,
    /// Final total energy.
    pub final_energy: f64,
    /// Device/IO virtual-time accounting (device runs only).
    pub timing: Option<PipelineTiming>,
    /// Kernel name that produced the forces.
    pub kernel: &'static str,
}

/// Evolve `system` on the Wormhole device for
/// `cycles × steps_per_cycle` Hermite steps.
///
/// # Errors
/// Pipeline construction or kernel faults.
pub fn run_device_simulation(
    device: Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
) -> Result<SimulationOutcome> {
    let pipeline = DeviceForcePipeline::new(device, system.len(), config.eps, config.num_cores)?;
    let kernel = DeviceForceKernel::new(pipeline);
    let integ = Hermite4::new(kernel);
    let e0 = total_energy(system, config.eps);

    integ.initialize(system);
    let total_steps = config.cycles * config.steps_per_cycle;
    for _cycle in 0..config.cycles {
        for _ in 0..config.steps_per_cycle {
            integ.step(system, config.dt);
        }
    }
    let e1 = total_energy(system, config.eps);
    Ok(SimulationOutcome {
        steps: total_steps,
        final_time: system.time,
        energy_error: relative_energy_error(e1, e0),
        initial_energy: e0,
        final_energy: e1,
        timing: Some(integ.kernel().pipeline().timing()),
        kernel: "tenstorrent-wormhole",
    })
}

/// How the resilient runner survives faults mid-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Snapshot the FP64 Hermite state every this many successful steps.
    pub checkpoint_every: usize,
    /// In-place retry budget for transient launch faults (panics, deadlocks,
    /// stalls). Device loss is never retried in place — the card's DRAM is
    /// gone — and always goes through reset + checkpoint restore instead.
    pub retry: RetryPolicy,
    /// How many device losses the runner will reset-and-resume past before
    /// giving up and surfacing [`LaunchError::DeviceLost`].
    pub max_recoveries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { checkpoint_every: 4, retry: RetryPolicy::default(), max_recoveries: 2 }
    }
}

/// Outcome of a resilient run: the physics plus the recovery ledger.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The simulation outcome, exactly as a fault-free run would report it
    /// (timing additionally includes the replayed work).
    pub outcome: SimulationOutcome,
    /// Device losses survived via reset + checkpoint restore.
    pub recoveries: u32,
    /// Steps re-executed after rolling back to a checkpoint.
    pub steps_replayed: usize,
}

fn build_device_integrator(
    device: &Arc<Device>,
    n: usize,
    config: SimulationConfig,
    retry: RetryPolicy,
) -> Result<Hermite4<DeviceForceKernel>> {
    let pipeline = DeviceForcePipeline::new(Arc::clone(device), n, config.eps, config.num_cores)?;
    Ok(Hermite4::new(DeviceForceKernel::with_retry(pipeline, retry)))
}

/// Evolve `system` on the device like [`run_device_simulation`], but survive
/// injected faults: transient launch failures are retried in place, and a
/// mid-run device loss triggers reset → pipeline rebuild → restore of the
/// last FP64 checkpoint → replay. Because the checkpoint holds the exact
/// host-side Hermite state and the force pipeline is deterministic, a
/// recovered run is f64-bitwise identical to a fault-free one.
///
/// # Errors
/// Pipeline construction failures, non-transient kernel faults, reset
/// failures during recovery, or more than `recovery.max_recoveries` device
/// losses.
///
/// # Panics
/// Re-raises kernel panics that are not device faults (e.g. assertion
/// failures in kernel code).
pub fn run_device_simulation_resilient(
    device: &Arc<Device>,
    system: &mut ParticleSystem,
    config: SimulationConfig,
    recovery: RecoveryConfig,
) -> std::result::Result<ResilientOutcome, LaunchError> {
    let n = system.len();
    let e0 = total_energy(system, config.eps);
    let mut timing_acc = PipelineTiming::default();
    let mut recoveries: u32 = 0;
    let mut steps_replayed: usize = 0;

    let mut integ = build_device_integrator(device, n, config, recovery.retry)?;

    // Initialization: Hermite4::initialize only mutates the system after the
    // force evaluation succeeds, so on device loss the state is untouched
    // and we can simply reset and try again.
    loop {
        match catch_unwind(AssertUnwindSafe(|| integ.initialize(system))) {
            Ok(()) => break,
            Err(payload) => match payload.downcast::<TensixError>() {
                Ok(err) => match *err {
                    TensixError::DeviceLost { .. } if recoveries < recovery.max_recoveries => {
                        recoveries += 1;
                        timing_acc.absorb(integ.kernel().pipeline().timing());
                        device.reset()?;
                        integ = build_device_integrator(device, n, config, recovery.retry)?;
                    }
                    other => return Err(LaunchError::from(other)),
                },
                Err(payload) => resume_unwind(payload),
            },
        }
    }

    // Checkpoint *after* initialize: a resume restores the exact post-init
    // FP64 state and replays only whole steps, keeping bitwise identity.
    let mut checkpoint = system.clone();
    let mut checkpoint_step: usize = 0;

    let total_steps = config.cycles * config.steps_per_cycle;
    let mut step = 0;
    while step < total_steps {
        match catch_unwind(AssertUnwindSafe(|| integ.step(system, config.dt))) {
            Ok(()) => {
                step += 1;
                // Checkpoint on every full stride, including one landing on
                // the final step: a device loss during a terminal partial
                // stride must never replay more than `checkpoint_every`
                // steps (the old `step < total_steps` guard broke that
                // promise for late losses).
                if step - checkpoint_step >= recovery.checkpoint_every.max(1) {
                    checkpoint = system.clone();
                    checkpoint_step = step;
                }
            }
            Err(payload) => match payload.downcast::<TensixError>() {
                Ok(err) => match *err {
                    TensixError::DeviceLost { .. } if recoveries < recovery.max_recoveries => {
                        recoveries += 1;
                        timing_acc.absorb(integ.kernel().pipeline().timing());
                        device.reset()?;
                        integ = build_device_integrator(device, n, config, recovery.retry)?;
                        // A failed step leaves `system` in the half-predicted
                        // state Hermite4 writes before calling the kernel, so
                        // recovery always restores the checkpoint.
                        *system = checkpoint.clone();
                        steps_replayed += step - checkpoint_step;
                        step = checkpoint_step;
                    }
                    other => return Err(LaunchError::from(other)),
                },
                Err(payload) => resume_unwind(payload),
            },
        }
    }

    let e1 = total_energy(system, config.eps);
    timing_acc.absorb(integ.kernel().pipeline().timing());
    Ok(ResilientOutcome {
        outcome: SimulationOutcome {
            steps: total_steps,
            final_time: system.time,
            energy_error: relative_energy_error(e1, e0),
            initial_energy: e0,
            final_energy: e1,
            timing: Some(timing_acc),
            kernel: "tenstorrent-wormhole",
        },
        recoveries,
        steps_replayed,
    })
}

/// Evolve `system` with the CPU reference (threaded SIMD mixed-precision
/// kernel — the stand-in for the paper's AVX-512 + OpenMP implementation).
#[must_use]
pub fn run_cpu_simulation(
    system: &mut ParticleSystem,
    config: SimulationConfig,
    threads: usize,
) -> SimulationOutcome {
    let kernel = ThreadedKernel::new(SimdKernel::new(config.eps), threads);
    let name = kernel.name();
    let integ = Hermite4::new(kernel);
    let e0 = total_energy(system, config.eps);
    integ.initialize(system);
    let total_steps = config.cycles * config.steps_per_cycle;
    for _ in 0..total_steps {
        integ.step(system, config.dt);
    }
    let e1 = total_energy(system, config.eps);
    SimulationOutcome {
        steps: total_steps,
        final_time: system.time,
        energy_error: relative_energy_error(e1, e0),
        initial_energy: e0,
        final_energy: e1,
        timing: None,
        kernel: name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::ic::{plummer, PlummerConfig};
    use tensix::DeviceConfig;

    fn small_config() -> SimulationConfig {
        SimulationConfig { eps: 0.05, cycles: 2, steps_per_cycle: 2, dt: 1.0 / 256.0, num_cores: 1 }
    }

    #[test]
    fn device_simulation_conserves_energy() {
        let mut sys = plummer(PlummerConfig { n: 128, seed: 100, ..PlummerConfig::default() });
        let dev = Device::new(0, DeviceConfig::default());
        let out = run_device_simulation(dev, &mut sys, small_config()).unwrap();
        assert_eq!(out.steps, 4);
        assert!((out.final_time - 4.0 / 256.0).abs() < 1e-12);
        // FP32 forces: energy error at the 1e-5 level over a few steps.
        assert!(out.energy_error < 1e-4, "energy error {}", out.energy_error);
        let t = out.timing.expect("device runs report timing");
        assert_eq!(t.evaluations, 5, "init + 4 steps");
        assert!(t.device_seconds > 0.0);
    }

    #[test]
    fn device_and_cpu_runs_agree() {
        let mk = || plummer(PlummerConfig { n: 96, seed: 101, ..PlummerConfig::default() });
        let cfg = small_config();

        let mut dev_sys = mk();
        let dev = Device::new(0, DeviceConfig::default());
        run_device_simulation(dev, &mut dev_sys, cfg).unwrap();

        let mut cpu_sys = mk();
        let _ = run_cpu_simulation(&mut cpu_sys, cfg, 2);

        // Same mixed-precision algorithm, different summation order: the
        // trajectories agree to FP32-commensurate accuracy over 4 steps.
        for i in 0..dev_sys.len() {
            for k in 0..3 {
                let d = (dev_sys.pos[i][k] - cpu_sys.pos[i][k]).abs();
                assert!(d < 1e-5, "particle {i} axis {k} diverged by {d}");
            }
        }
    }

    #[test]
    fn device_loss_mid_run_resumes_bitwise_identical() {
        use tensix::fault::FaultClass;

        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 4,
            dt: 1.0 / 256.0,
            num_cores: 2,
        };
        let mk = || plummer(PlummerConfig { n: 512, seed: 103, ..PlummerConfig::default() });

        let clean_dev = Device::new(0, DeviceConfig::default());
        let mut clean_sys = mk();
        let clean = run_device_simulation_resilient(
            &clean_dev,
            &mut clean_sys,
            cfg,
            RecoveryConfig::default(),
        )
        .unwrap();
        assert_eq!(clean.recoveries, 0);
        assert_eq!(clean.steps_replayed, 0);

        // Launch events: initialize is #1, step i is #(i+1); kill the card
        // mid-way through the 4th step.
        let dev = Device::new(0, DeviceConfig::default());
        dev.faults().schedule(FaultClass::DeviceLoss, 5);
        let mut sys = mk();
        let out = run_device_simulation_resilient(&dev, &mut sys, cfg, RecoveryConfig::default())
            .unwrap();
        assert_eq!(out.recoveries, 1);
        assert_eq!(out.steps_replayed, 3, "rolled back to the post-init checkpoint");
        assert_eq!(dev.faults().stats().device_losses, 1);

        // Checkpoint/restart must be invisible to the physics: f64-bitwise
        // identical state and energies.
        assert_eq!(sys.pos, clean_sys.pos);
        assert_eq!(sys.vel, clean_sys.vel);
        assert_eq!(out.outcome.final_energy.to_bits(), clean.outcome.final_energy.to_bits());
        assert_eq!(out.outcome.energy_error.to_bits(), clean.outcome.energy_error.to_bits());
        // Replayed work is billed, not hidden.
        let t = out.outcome.timing.unwrap();
        let tc = clean.outcome.timing.unwrap();
        assert_eq!(t.evaluations, tc.evaluations + out.steps_replayed as u64);
    }

    #[test]
    fn device_loss_replays_at_most_checkpoint_every_steps() {
        use tensix::fault::FaultClass;

        // Sweep the loss over every step of the run, including the final
        // partial stride: the checkpoint cadence must bound the replay at
        // `checkpoint_every` everywhere (the old `step < total_steps` guard
        // was the accounting bug this pins down).
        let cfg = SimulationConfig {
            eps: 0.05,
            cycles: 2,
            steps_per_cycle: 3,
            dt: 1.0 / 256.0,
            num_cores: 1,
        };
        let total = cfg.cycles * cfg.steps_per_cycle;
        let recovery = RecoveryConfig { checkpoint_every: 2, ..RecoveryConfig::default() };
        for lost_step in 1..=total {
            let dev = Device::new(0, DeviceConfig::default());
            // Launch events: initialize is #1, step i is #(i+1).
            dev.faults().schedule(FaultClass::DeviceLoss, (lost_step + 1) as u64);
            let mut sys = plummer(PlummerConfig { n: 64, seed: 105, ..PlummerConfig::default() });
            let out = run_device_simulation_resilient(&dev, &mut sys, cfg, recovery).unwrap();
            assert_eq!(out.recoveries, 1, "loss at step {lost_step}");
            assert!(
                out.steps_replayed < recovery.checkpoint_every,
                "loss at step {lost_step}: replayed {} ≥ checkpoint_every {}",
                out.steps_replayed,
                recovery.checkpoint_every
            );
            assert_eq!(out.outcome.steps, total);
        }
    }

    #[test]
    fn repeated_device_loss_exhausts_recovery_budget() {
        use tensix::FaultConfig;

        let dev = Device::new(
            0,
            DeviceConfig {
                faults: FaultConfig { device_loss_prob: 1.0, ..FaultConfig::default() },
                ..DeviceConfig::default()
            },
        );
        let mut sys = plummer(PlummerConfig { n: 64, seed: 104, ..PlummerConfig::default() });
        let recovery = RecoveryConfig { max_recoveries: 1, ..RecoveryConfig::default() };
        let err =
            run_device_simulation_resilient(&dev, &mut sys, small_config(), recovery).unwrap_err();
        assert!(matches!(err, LaunchError::DeviceLost { .. }), "{err:?}");
    }

    #[test]
    fn cpu_simulation_reports() {
        let mut sys = plummer(PlummerConfig { n: 64, seed: 102, ..PlummerConfig::default() });
        let out = run_cpu_simulation(&mut sys, small_config(), 4);
        assert_eq!(out.kernel, "threaded");
        assert!(out.timing.is_none());
        assert!(out.energy_error < 1e-3);
        assert!(out.initial_energy < 0.0, "bound cluster");
    }
}
