//! Cross-layer fault-tolerance properties: the seeded fault injector, the
//! retry machinery and the campaign census, asserted across seeds rather
//! than at single pinned configurations.

use proptest::prelude::*;

use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::{DeviceForcePipeline, RetryPolicy};
use tensix::fault::{FaultClass, FaultConfig};
use tensix::{Device, DeviceConfig, PowerParams};
use tt_telemetry::campaign::{census, run_campaign, run_job, FaultPolicy, JobKind, JobSpec};

/// A short-timeline accelerated job spec: same structure as the paper
/// campaign, scaled down so seeded sweeps stay fast.
fn quick_spec(reset_failure_prob: f64) -> JobSpec {
    JobSpec {
        kind: JobKind::Accelerated,
        nominal_seconds: 40.0,
        time_jitter_frac: 0.0008,
        sleep_seconds: 10.0,
        cards: 4,
        active_card: 3,
        devices: 1,
        card_params: PowerParams::default(),
        host_sim_power_w: 152.7,
        host_idle_power_w: 130.0,
        reset_failure_prob,
        sample_interval: 1.0,
        faults: FaultPolicy::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The injected reset census behaves as Binomial(jobs, 1 − p) for any
    /// seed and failure probability — the injector neither clusters nor
    /// starves failures — and replays deterministically under its seed.
    #[test]
    fn reset_census_is_binomial_consistent(seed in 0u64..10_000, p in 0.05f64..0.95) {
        let jobs = 40usize;
        let spec = quick_spec(p);
        let c = census(&run_campaign(&spec, jobs, seed));
        prop_assert_eq!(c.submitted, jobs);
        prop_assert_eq!(c.succeeded + c.failed(), jobs);
        prop_assert_eq!(c.failed(), c.failed_reset, "one-shot policy only fails at reset");

        let mean = jobs as f64 * (1.0 - p);
        let sd = (jobs as f64 * p * (1.0 - p)).sqrt();
        // 4.5σ (+1 for the tails at extreme p): a false alarm over the
        // whole sweep has probability well under 1e-3.
        prop_assert!(
            (c.succeeded as f64 - mean).abs() < 4.5 * sd + 1.0,
            "{} successes vs Binomial mean {mean:.1}, sd {sd:.2}",
            c.succeeded
        );

        prop_assert_eq!(c, census(&run_campaign(&spec, jobs, seed)), "census must replay");
    }

    /// A job that came up only after reset retries measures exactly what
    /// the same job measures on a healthy card: the retries happen outside
    /// the measurement window and never double-count time or energy.
    #[test]
    fn retried_jobs_never_double_count(seed in 0u64..10_000) {
        let mut spec = quick_spec(0.48);
        spec.faults = FaultPolicy {
            reset_retries: 6,
            reset_backoff_s: 2.0,
            ..FaultPolicy::default()
        };
        let records = run_campaign(&spec, 12, seed);
        let healthy = quick_spec(0.0);
        for rec in records.iter().filter(|r| r.success() && r.reset_retries_used > 0) {
            let clean = run_job(&healthy, rec.job_id, seed);
            prop_assert_eq!(rec.time_to_solution, clean.time_to_solution);
            prop_assert_eq!(rec.total_energy_j, clean.total_energy_j);
            prop_assert_eq!(rec.peak_power_w, clean.peak_power_w);
            prop_assert_eq!(rec.sim_window, clean.sim_window);
            prop_assert!(rec.recovery_overhead_s > 0.0, "the backoff must be billed");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An injected transient device fault followed by an in-place retry
    /// produces forces f64-bitwise identical to a fault-free evaluation
    /// (N = 512), wherever in the read stream the fault lands.
    #[test]
    fn fault_then_retry_is_bit_identical(seed in 0u64..1000, at in 1u64..40) {
        let n = 512;
        let sys = plummer(PlummerConfig { n, seed: 2024, ..PlummerConfig::default() });
        let clean =
            DeviceForcePipeline::new(Device::new(0, DeviceConfig::default()), n, 0.01, 2)
                .unwrap();
        let clean_forces = clean.evaluate(&sys).unwrap();

        // Every DRAM hit is uncorrectable; schedule one on the `at`-th read.
        let dev = Device::new(
            0,
            DeviceConfig {
                faults: FaultConfig { dram_uncorrectable_frac: 1.0, ..FaultConfig::default() },
                seed,
                ..DeviceConfig::default()
            },
        );
        dev.faults().schedule(FaultClass::DramRead, at);
        let faulty = DeviceForcePipeline::new(dev, n, 0.01, 2).unwrap();
        let forces = faulty.evaluate_with_retry(&sys, RetryPolicy::default()).unwrap();
        prop_assert_eq!(faulty.timing().retries, 1, "exactly one retry");
        prop_assert_eq!(&forces.acc, &clean_forces.acc);
        prop_assert_eq!(&forces.jerk, &clean_forces.jerk);
    }
}
