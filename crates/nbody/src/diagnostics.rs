//! Conserved-quantity diagnostics.
//!
//! Direct N-body work validates integrators through energy and angular
//! momentum conservation; the relative energy error is the standard quality
//! metric for the Hermite scheme and is asserted throughout the test suite.

use crate::particle::{ParticleSystem, Vec3, G};

/// Total kinetic energy T = ½ Σ m v².
#[must_use]
pub fn kinetic_energy(system: &ParticleSystem) -> f64 {
    system
        .mass
        .iter()
        .zip(&system.vel)
        .map(|(m, v)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
        .sum()
}

/// Total potential energy W = −G Σ_{i<j} m_i m_j / √(r² + ε²), with Plummer
/// softening `eps`.
#[must_use]
pub fn potential_energy(system: &ParticleSystem, eps: f64) -> f64 {
    let n = system.len();
    let e2 = eps * eps;
    let mut w = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sub(system.pos[j], system.pos[i]);
            let r = (dot(d, d) + e2).sqrt();
            w -= G * system.mass[i] * system.mass[j] / r;
        }
    }
    w
}

/// Total energy E = T + W.
#[must_use]
pub fn total_energy(system: &ParticleSystem, eps: f64) -> f64 {
    kinetic_energy(system) + potential_energy(system, eps)
}

/// Virial ratio Q = −T / W (0.5 in equilibrium).
#[must_use]
pub fn virial_ratio(system: &ParticleSystem, eps: f64) -> f64 {
    -kinetic_energy(system) / potential_energy(system, eps)
}

/// Total angular momentum L = Σ m (r × v).
#[must_use]
pub fn angular_momentum(system: &ParticleSystem) -> Vec3 {
    let mut l = [0.0; 3];
    for ((m, r), v) in system.mass.iter().zip(&system.pos).zip(&system.vel) {
        l[0] += m * (r[1] * v[2] - r[2] * v[1]);
        l[1] += m * (r[2] * v[0] - r[0] * v[2]);
        l[2] += m * (r[0] * v[1] - r[1] * v[0]);
    }
    l
}

/// Relative energy error |(E − E₀)/E₀|.
///
/// # Panics
/// Panics when the reference energy is zero.
#[must_use]
pub fn relative_energy_error(e: f64, e0: f64) -> f64 {
    assert!(e0 != 0.0, "reference energy must be nonzero");
    ((e - e0) / e0).abs()
}

/// Lagrangian radius: radius enclosing `fraction` of the total mass, about
/// the center of mass (10%, 50%, 90% radii are the standard cluster
/// structure diagnostics).
///
/// # Panics
/// Panics unless `0 < fraction <= 1` and the system is non-empty.
#[must_use]
pub fn lagrangian_radius(system: &ParticleSystem, fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
    assert!(!system.is_empty(), "empty system has no Lagrangian radii");
    let com = system.center_of_mass();
    let mut by_radius: Vec<(f64, f64)> = system
        .pos
        .iter()
        .zip(&system.mass)
        .map(|(p, m)| {
            let d = sub(*p, com);
            (dot(d, d).sqrt(), *m)
        })
        .collect();
    by_radius.sort_by(|a, b| a.0.total_cmp(&b.0));
    let target = fraction * system.total_mass();
    let mut cum = 0.0;
    for (r, m) in &by_radius {
        cum += m;
        if cum >= target {
            return *r;
        }
    }
    by_radius.last().map(|(r, _)| *r).unwrap_or(0.0)
}

fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn dot(a: Vec3, b: Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two unit-mass particles at distance 2 with tangential speeds 0.25:
    /// T = 2·(½·0.0625) = 0.0625, W = −1/2.
    fn pair() -> ParticleSystem {
        let mut s = ParticleSystem::with_capacity(2);
        s.push(1.0, [1.0, 0.0, 0.0], [0.0, 0.25, 0.0]);
        s.push(1.0, [-1.0, 0.0, 0.0], [0.0, -0.25, 0.0]);
        s
    }

    #[test]
    fn kinetic_and_potential_analytic() {
        let s = pair();
        assert!((kinetic_energy(&s) - 0.0625).abs() < 1e-15);
        assert!((potential_energy(&s, 0.0) + 0.5).abs() < 1e-15);
        assert!((total_energy(&s, 0.0) + 0.4375).abs() < 1e-15);
        assert!((virial_ratio(&s, 0.0) - 0.125).abs() < 1e-15);
    }

    #[test]
    fn softening_weakens_potential() {
        let s = pair();
        let hard = potential_energy(&s, 0.0);
        let soft = potential_energy(&s, 1.0);
        assert!(soft > hard, "softened potential is shallower");
        // ε = 1, r = 2 ⇒ W = −1/√5.
        assert!((soft + 1.0 / 5.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn angular_momentum_analytic() {
        let s = pair();
        let l = angular_momentum(&s);
        // Each particle: |r × v| = 1 · 0.25 about z, same sign.
        assert!((l[2] - 0.5).abs() < 1e-15);
        assert_eq!(l[0], 0.0);
        assert_eq!(l[1], 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_energy_error(-0.25, -0.25), 0.0);
        assert!((relative_energy_error(-0.2525, -0.25) - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn relative_error_zero_reference_panics() {
        let _ = relative_energy_error(1.0, 0.0);
    }

    #[test]
    fn lagrangian_radius_of_pair() {
        let s = pair();
        assert!((lagrangian_radius(&s, 0.5) - 1.0).abs() < 1e-15);
        assert!((lagrangian_radius(&s, 1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn lagrangian_fraction_checked() {
        let _ = lagrangian_radius(&pair(), 1.5);
    }
}
