//! Experiment E14 — device-catalog cross-part sweep (extension): the same
//! paper-scale run (N = 102 400, ten cycles) projected on each catalog part
//! (`n150`, `n300`) and for both force-kernel formulations. Cycles/pair are
//! *measured* first by running each kernel functionally through the device
//! pipeline at a small N; the calibrated per-arch model (cores, clock, DRAM
//! channels all from `tensix::catalog`) then extrapolates to the full card.

use std::fs;
use std::path::Path;

use nbody::ic::{plummer, PlummerConfig};
use nbody_tt::perf_model::RunModel;
use nbody_tt::pipeline::DeviceForcePipeline;
use nbody_tt::{arch_run, ForceKernelKind, WormholePerfModel, DEVICE_CYCLES_PER_PAIR};
use tensix::catalog::DeviceArch;
use tensix::{DataFormat, Device};

/// Particle count of the functional cycles/pair measurement (2 cores).
const MEASURE_N: usize = 2048;

fn measured_cycles_per_pair(kind: ForceKernelKind) -> f64 {
    let sys = plummer(PlummerConfig { n: MEASURE_N, seed: 0x5c25, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceArch::n300().device_config());
    let pipeline =
        DeviceForcePipeline::new_with_kernel(device, MEASURE_N, 0.01, 2, DataFormat::Float32, kind)
            .expect("pipeline for the measurement run");
    pipeline.evaluate(&sys).expect("measurement evaluation");
    let unit = pipeline.work_unit_particles();
    let owned = MEASURE_N.div_ceil(unit).div_ceil(2) * unit;
    pipeline.timing().last_eval_cycles as f64 / (owned * MEASURE_N) as f64
}

fn main() {
    println!("=== E14: device-catalog cross-part sweep (fixed paper N) ===\n");
    let ew = measured_cycles_per_pair(ForceKernelKind::Elementwise);
    let mx = measured_cycles_per_pair(ForceKernelKind::Matrix);
    println!(
        "measured cycles/pair (functional pipeline, n = {MEASURE_N}): \
         elementwise {ew:.3} (calibrated {DEVICE_CYCLES_PER_PAIR}), matrix {mx:.3}\n"
    );

    println!(" part | cores | clock | elementwise (s) | matrix (s) | kernel speedup");
    let mut csv = String::from("part,cores,clock_ghz,elementwise_s,matrix_s,kernel_speedup\n");
    for arch in [DeviceArch::n150(), DeviceArch::n300()] {
        let run = arch_run(&arch);
        let t_ew = run.accel_seconds_multi_device(arch.chips);
        let matrix_run =
            RunModel { device: WormholePerfModel { cycles_per_pair: mx, ..run.device }, ..run };
        let t_mx = matrix_run.accel_seconds_multi_device(arch.chips);
        println!(
            " {:>4} | {:>5} | {:.2} GHz | {t_ew:>14.1} | {t_mx:>9.1} | {:>13.2}x",
            arch.name,
            arch.total_cores(),
            arch.clock_ghz,
            t_ew / t_mx
        );
        csv.push_str(&format!(
            "{},{},{:.2},{t_ew:.2},{t_mx:.2},{:.3}\n",
            arch.name,
            arch.total_cores(),
            arch.clock_ghz,
            t_ew / t_mx
        ));
    }
    println!(
        "\nfindings: the kernel speedup carries across parts (it is a cycles/pair\n\
         property), while the part ratio is set by core count x clock; the n300's\n\
         2nd chip only helps once the ring comm model is paid off."
    );
    fs::create_dir_all("results").ok();
    fs::write(Path::new("results/arch_sweep.csv"), csv).ok();
    println!("raw data written to results/arch_sweep.csv");
}
