//! E11 — multi-tenant serving under a fault storm.
//!
//! Replays a seeded open-loop workload (default 120 jobs, three tenants at
//! a 3:2:1 mix) through the job server over a mixed fleet — three single
//! cards, a 2-card ring with one spare, and a storm-immune host tree-code
//! backend (its own golden class) — while a seeded fault storm
//! injects device losses, Ethernet flaps, and DRAM-ECC bursts. The
//! campaign is then replayed from the same seed and the two reports are
//! compared digest-for-digest.
//!
//! Prints the zero-lost-jobs verdict, the determinism verdict, the
//! per-tenant latency census, and the latency-attribution tables (queue /
//! service / retry / migration / degrade, per tenant and per backend
//! class); writes `results/serving_jobs.csv`, `results/serving_census.csv`,
//! and `results/serving_attribution.csv`. The always-on flight recorder
//! dumps JSON post-mortems to `results/postmortem/` on golden mismatch,
//! job loss, or breaker trip. With `--profile` the per-job span trees are
//! additionally rendered as a Chrome trace (`results/serving_trace.json`)
//! with one lane per tenant (queue waits) and one lane per backend.
//! Exits non-zero if any admitted job is lost, any completion mismatches
//! its fault-free golden, the replay digest differs, or the attribution
//! buckets fail to sum to the end-to-end latency exactly.
//!
//! Usage: `serve_storm [--jobs N] [--seed S] [--profile]`

use std::sync::Arc;

use tensix::StormConfig;
use tt_harness::{generate_load, LoadConfig};
use tt_server::{run_campaign, BackendKind, BreakerConfig, FlightConfig, ServerConfig, TenantSpec};
use tt_telemetry::attribution::{
    attribute, attributions_to_csv, rollup_by_class, rollup_by_tenant, rollups_to_table,
};
use tt_telemetry::serving::{census_to_csv, jobs_to_csv};
use tt_trace::serving::server_trace_to_chrome;
use tt_trace::MemorySink;

fn main() {
    // The resilient driver surfaces device faults as caught panics; the
    // default hook would spray a backtrace for every injected fault.
    tt_server::install_fault_panic_filter();

    let mut jobs = 120usize;
    let mut seed = 0xe10u64;
    let mut profile = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--jobs" => {
                jobs = args.get(i + 1).expect("--jobs takes a count").parse().expect("--jobs");
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).expect("--seed takes a u64").parse().expect("--seed");
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let load = LoadConfig { seed, jobs, rate_hz: 2000.0, deadline_s: 0.5, ..LoadConfig::default() };
    let arrivals = generate_load(&load).unwrap_or_else(|e| {
        eprintln!("invalid load config: {e}");
        std::process::exit(2);
    });
    let spill_dir = std::env::temp_dir().join(format!("tt-serve-e10-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("spill dir");
    std::fs::create_dir_all("results").expect("results dir");

    let cfg = ServerConfig {
        tenants: vec![
            TenantSpec { weight: 3.0, max_queue: 24 },
            TenantSpec { weight: 2.0, max_queue: 24 },
            TenantSpec { weight: 1.0, max_queue: 24 },
        ],
        backends: vec![
            BackendKind::SingleCard,
            BackendKind::SingleCard,
            BackendKind::SingleCard,
            BackendKind::Ring { members: 2, spares: 1 },
            // Storm-immune host tree backend: its own golden class, never a
            // cross-class migration target.
            BackendKind::TreeHost { theta_milli: 600 },
        ],
        storm: StormConfig {
            seed,
            device_loss_prob: 0.02,
            eth_flap_prob: 0.01,
            dram_corruption_prob: 1e-4,
            scheduled_loss_prob: 0.5,
            ..StormConfig::default()
        },
        max_queue: 48,
        breaker: BreakerConfig { threshold: 2, quarantine_s: 0.005 },
        recoveries_per_segment: 0,
        spill_dir,
        flight: FlightConfig {
            dump_dir: Some("results/postmortem".into()),
            ..FlightConfig::default()
        },
        ..ServerConfig::default()
    };

    println!(
        "E11 fault-storm serving campaign: {} jobs, seed {:#x}, fleet 3x card + 1x ring(2+1) + 1x tree(θ=0.6)",
        jobs, seed
    );

    let sink = Arc::new(MemorySink::new());
    let report = run_campaign(&cfg, &arrivals, Some(sink.as_ref()));
    // The replay writes no post-mortems (same triggers would fire; the
    // first run's dumps are the record).
    let replay_cfg = ServerConfig {
        flight: FlightConfig { dump_dir: None, ..FlightConfig::default() },
        ..cfg.clone()
    };
    let replay = run_campaign(&replay_cfg, &arrivals, None);

    let c = &report.census;
    println!(
        "jobs admitted: {} completed: {} shed: {} lost: {}",
        c.total,
        c.completed,
        c.shed,
        c.total - c.completed - c.shed
    );
    println!("bitwise-identical to fault-free goldens: {}", c.bitwise_golden == c.completed);
    println!("deterministic replay digest match: {}", report.digest == replay.digest);
    let failovers: u64 = report.backends.iter().map(|b| b.failovers).sum();
    println!(
        "quarantines: {} migrations: {} recoveries: {} cpu-fallbacks: {} ring-failovers: {}",
        report.quarantines, c.migrations, c.recoveries, report.cpu_fallbacks, failovers
    );
    println!("latency p50: {:.6} s p99: {:.6} s (virtual)", c.p50_latency_s, c.p99_latency_s);
    for t in &c.tenants {
        println!(
            "  tenant {}: admitted {} completed {} shed {} degraded {} p50 {:.6} s p99 {:.6} s",
            t.tenant,
            t.admitted,
            t.completed,
            t.shed,
            t.degraded_cpu,
            t.p50_latency_s,
            t.p99_latency_s
        );
    }
    for b in &report.backends {
        println!(
            "  backend {}: completed {} terminal-faults {} quarantines {} failovers {}",
            b.label, b.completed, b.terminal_faults, b.quarantines, b.failovers
        );
    }
    println!("server trace events: {}", sink.export().len());

    // Latency attribution from the per-job span trees: buckets must sum to
    // end-to-end latency exactly (integer virtual nanoseconds) and replay
    // bitwise from the campaign seed.
    assert_eq!(report.spans.len(), report.jobs.len(), "one span tree per admitted job");
    let attributions: Vec<_> = report
        .spans
        .iter()
        .map(|t| attribute(t).unwrap_or_else(|e| panic!("malformed span tree: {e}")))
        .collect();
    for a in &attributions {
        assert_eq!(
            a.bucket_sum_ns(),
            a.total_ns,
            "job {}: attribution buckets must sum to end-to-end latency exactly",
            a.job_id
        );
    }
    assert_eq!(report.spans, replay.spans, "span trees must replay bitwise");
    let replay_attr: Vec<_> = replay.spans.iter().map(|t| attribute(t).unwrap()).collect();
    assert_eq!(
        attributions_to_csv(&attributions),
        attributions_to_csv(&replay_attr),
        "attribution must replay bitwise"
    );
    println!("attribution buckets sum exactly to latency: true (replay bitwise-identical: true)");
    print!("{}", rollups_to_table("per-tenant attribution:", &rollup_by_tenant(&attributions)));
    print!("{}", rollups_to_table("per-class attribution:", &rollup_by_class(&attributions)));

    // Flight recorder: every trigger is listed; dumped post-mortems name
    // their files.
    println!(
        "flight recorder: {} trigger(s), ring evictions: {}",
        report.postmortems.len(),
        report.flight_dropped
    );
    for pm in &report.postmortems {
        match (&pm.path, pm.job_id) {
            (Some(p), Some(j)) => println!(
                "flight-recorder dump: {} job={} t={:.6}s -> {}",
                pm.trigger.label(),
                j,
                pm.t_s,
                p.display()
            ),
            (Some(p), None) => println!(
                "flight-recorder dump: {} t={:.6}s -> {}",
                pm.trigger.label(),
                pm.t_s,
                p.display()
            ),
            (None, _) => println!(
                "flight-recorder trigger (not dumped): {} t={:.6}s",
                pm.trigger.label(),
                pm.t_s
            ),
        }
    }

    std::fs::write("results/serving_jobs.csv", jobs_to_csv(&report.jobs)).expect("jobs csv");
    std::fs::write("results/serving_census.csv", census_to_csv(c)).expect("census csv");
    std::fs::write("results/serving_attribution.csv", attributions_to_csv(&attributions))
        .expect("attribution csv");
    println!(
        "wrote results/serving_jobs.csv, results/serving_census.csv, results/serving_attribution.csv"
    );

    if profile {
        let labels: Vec<String> = report.backends.iter().map(|b| b.label.clone()).collect();
        let chrome = server_trace_to_chrome(&report.spans, &labels);
        std::fs::write("results/serving_trace.json", &chrome).expect("serving trace");
        println!(
            "wrote results/serving_trace.json ({} span trees, one lane per tenant + per backend)",
            report.spans.len()
        );
    }

    assert_eq!(c.total, jobs, "every submitted job must be accounted for");
    assert!(c.zero_lost_jobs(), "zero-lost-jobs invariant violated");
    assert_eq!(report.digest, replay.digest, "campaign must replay bitwise");
}
