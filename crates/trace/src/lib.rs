//! # tt-trace — device tracing and metrics for the Wormhole simulator
//!
//! The simulator counts a lot (CB stalls, NoC transfers, per-kernel
//! cycles) but historically exposed only end-of-run aggregates. This
//! crate is the observability substrate: structured trace events on the
//! virtual device clock, a lock-cheap [`TraceSink`] the simulator layers
//! write into, a Chrome `trace_event` exporter (loadable in Perfetto or
//! `chrome://tracing`), and a [`MetricsRegistry`] of named
//! counters/gauges/histograms.
//!
//! Design rules:
//!
//! - **Zero-cost when off.** Instrumented code holds an
//!   `Option<SpanEmitter>`; with tracing disabled the option is `None`
//!   and the hooks compile down to a branch. Tracing never adds virtual
//!   cycles, so `PipelineTiming` is identical with tracing on or off.
//! - **Deterministic.** Events carry virtual-clock timestamps plus a
//!   per-track sequence number; [`MemorySink::export`] orders by
//!   `(epoch, ts, core, role, seq)`, so traces of the same seeded run are
//!   byte-for-byte diffable.
//! - **Wall-clock free.** Nothing here reads host time; all timestamps
//!   come from the caller's cycle counters.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod serving;
pub mod sink;

pub use chrome::{check_monotonic_per_track, parse_chrome_trace, to_chrome_trace, ChromeEvent};
pub use event::{check_nesting, EventKind, RiscRole, TraceEvent, HOST_CORE};
pub use metrics::{CycleHistogram, MetricValue, MetricsRegistry};
pub use serving::{
    server_trace_to_chrome, spans_to_csv, virtual_ns, JobPhase, JobSpanBuilder, JobSpanTree,
    PhaseSpan,
};
pub use sink::{MemorySink, NullSink, SpanEmitter, TraceSink};
