//! End-to-end bitwise regression tests for the zero-copy tile pipeline.
//!
//! Two layers of defense:
//!
//! 1. A lane-exact scalar emulation of the device kernels' FP32 op sequence
//!    (the order the compute kernel issues its FPU/SFPU instructions in)
//!    must reproduce the pipeline's forces bit for bit — so any future
//!    reordering, re-association, or caching bug in the tile path shows up
//!    as a bit flip, not a tolerance drift.
//! 2. Golden values captured from the pre-optimization pipeline (Arc'd CB
//!    pages, tilize cache, vectorized tile math and the worker pool must
//!    all be invisible): the forces hash *and* the full `PipelineTiming`
//!    cycle accounting are pinned for two seeds covering single-core and
//!    multi-core tile splits.

use nbody::ic::{plummer, PlummerConfig};
use nbody::particle::{Forces, ParticleSystem};
use nbody_tt::{DeviceForcePipeline, HostArrays, MultiDevicePipeline};
use tensix::{Device, DeviceConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn forces_hash(f: &Forces) -> u64 {
    let mut bytes = Vec::with_capacity(f.len() * 48);
    for v in f.acc.iter().chain(f.jerk.iter()) {
        for c in v {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

/// Lane-exact FP32 emulation of `ForceComputeKernel::interact` — every
/// arithmetic step in the order (and associativity) the device kernel
/// issues it, including the `fma` accumulations of the MAD LLK.
// Plain `x = x + ...` assignments (not `+=`) deliberately mirror the device
// kernel's two-operand instruction issue order.
#[allow(clippy::assign_op_pattern)]
fn emulate_device_forces(sys: &ParticleSystem, eps: f64) -> Forces {
    let a = HostArrays::from_system(sys);
    let eps2 = (eps * eps) as f32;
    let n = a.n;
    let mut out = Forces::zeros(n);
    for i in 0..n {
        let (xi, yi, zi) = (a.pos[0][i], a.pos[1][i], a.pos[2][i]);
        let (vxi, vyi, vzi) = (a.vel[0][i], a.vel[1][i], a.vel[2][i]);
        let mut acc = [0.0f32; 3];
        let mut jerk = [0.0f32; 3];
        for j in 0..n {
            // Phase A: displacements (FPU sub_tiles, source minus target).
            let d = [a.pos[0][j] - xi, a.pos[1][j] - yi, a.pos[2][j] - zi];
            let dv = [a.vel[0][j] - vxi, a.vel[1][j] - vyi, a.vel[2][j] - vzi];
            // Phase B: w = m/s³ and rv3 = 3(d·dv)/s².
            let mut r2 = d[0] * d[0]; // square_tile + add_binary_tile chain
            r2 = r2 + d[1] * d[1];
            r2 = r2 + d[2] * d[2];
            let s2 = r2 * 1.0 + eps2; // scale_tile(0, 1.0, ε²)
            let inv_s = 1.0 / s2.sqrt(); // rsqrt_tile (precise)
            let inv_s2 = inv_s * inv_s; // square_tile
            let inv_s3 = inv_s2 * inv_s; // mul_binary_tile
            let w = inv_s3 * a.mass[j]; // mul_binary_tile with m_j
            let mut rv = d[0] * dv[0]; // mul_tiles + add_binary_tile chain
            rv = rv + d[1] * dv[1];
            rv = rv + d[2] * dv[2];
            rv = rv * inv_s2; // mul_binary_tile
            let rv3 = rv * 3.0 + 0.0; // scale_tile(4, 3.0, 0.0)
            for axis in 0..3 {
                // Phase C1: acc += d·w (SFPU MAD = f32::mul_add).
                acc[axis] = d[axis].mul_add(w, acc[axis]);
            }
            for axis in 0..3 {
                // Phase C2: jerk += (dv − rv3·d)·w, issued as
                // neg(d·rv3) + dv then MAD.
                let t = -(d[axis] * rv3) + dv[axis];
                jerk[axis] = t.mul_add(w, jerk[axis]);
            }
        }
        for axis in 0..3 {
            out.acc[i][axis] = f64::from(acc[axis]);
            out.jerk[i][axis] = f64::from(jerk[axis]);
        }
    }
    out
}

fn run_pipeline(n: usize, seed: u64, eps: f64, cores: usize) -> (Forces, nbody_tt::PipelineTiming) {
    let sys = plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let pipeline = DeviceForcePipeline::new(device, n, eps, cores).unwrap();
    let f = pipeline.evaluate(&sys).unwrap();
    (f, pipeline.timing())
}

#[test]
fn pipeline_matches_scalar_emulation_bitwise_single_core() {
    let (n, seed, eps) = (80usize, 93u64, 0.03f64);
    let sys = plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let pipeline = DeviceForcePipeline::new(device, n, eps, 1).unwrap();
    let dev = pipeline.evaluate(&sys).unwrap();
    let host = emulate_device_forces(&sys, eps);
    for i in 0..n {
        for axis in 0..3 {
            assert_eq!(
                dev.acc[i][axis].to_bits(),
                host.acc[i][axis].to_bits(),
                "acc[{i}][{axis}]: device {} vs emulated {}",
                dev.acc[i][axis],
                host.acc[i][axis]
            );
            assert_eq!(
                dev.jerk[i][axis].to_bits(),
                host.jerk[i][axis].to_bits(),
                "jerk[{i}][{axis}]: device {} vs emulated {}",
                dev.jerk[i][axis],
                host.jerk[i][axis]
            );
        }
    }
}

#[test]
fn pipeline_matches_scalar_emulation_bitwise_multi_core() {
    // Two target tiles split over two cores: the cached reader path runs
    // per kernel instance, so both instances must stay lane-exact.
    let (n, seed, eps) = (1500usize, 95u64, 0.02f64);
    let sys = plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });
    let device = Device::new(0, DeviceConfig::default());
    let pipeline = DeviceForcePipeline::new(device, n, eps, 2).unwrap();
    let dev = pipeline.evaluate(&sys).unwrap();
    let host = emulate_device_forces(&sys, eps);
    let mut mismatches = 0usize;
    for i in 0..n {
        for axis in 0..3 {
            if dev.acc[i][axis].to_bits() != host.acc[i][axis].to_bits()
                || dev.jerk[i][axis].to_bits() != host.jerk[i][axis].to_bits()
            {
                mismatches += 1;
            }
        }
    }
    assert_eq!(mismatches, 0, "{mismatches} lanes differ from the scalar emulation");
}

#[test]
fn seed_golden_single_core() {
    // Captured from the pre-optimization pipeline (commit 6b8f827). The
    // zero-copy data path must keep forces AND cycle accounting bitwise.
    let (f, t) = run_pipeline(96, 90, 0.01, 1);
    assert_eq!(forces_hash(&f), 0xcd15_7171_9965_0133);
    assert_eq!(
        f.acc[0].map(f64::to_bits),
        [4590289887759958016, 4598304488934080512, 13825332225857552384]
    );
    assert_eq!(
        f.jerk[0].map(f64::to_bits),
        [13808396175524495360, 13822373409465565184, 4600568563227426816]
    );
    assert_eq!(t.device_seconds.to_bits(), 0x3f31_9bf8_8856_3f16);
    assert_eq!(t.io_seconds.to_bits(), 0x3f1e_9a05_3585_2e36);
    assert_eq!(t.evaluations, 1);
    assert_eq!(t.last_eval_cycles, 268_696);
    assert_eq!(t.busy_cycles, 385_760);
    assert_eq!(t.retries, 0);
    assert_eq!(t.wasted_cycles, 0);
    assert_eq!(t.redo_cycles, 0);
    assert_eq!(t.partial_redos, 0);
}

#[test]
fn seed_golden_multi_core() {
    let (f, t) = run_pipeline(2560, 91, 0.02, 2);
    assert_eq!(forces_hash(&f), 0x3978_aee1_c9f4_4781);
    assert_eq!(
        f.acc[0].map(f64::to_bits),
        [4604718705299947520, 13827545320499707904, 13825608754642550784]
    );
    assert_eq!(
        f.jerk[0].map(f64::to_bits),
        [13836184382538252288, 13820965827886710784, 4605462795499077632]
    );
    assert_eq!(t.device_seconds.to_bits(), 0x3f8d_476a_0817_b7be);
    assert_eq!(t.io_seconds.to_bits(), 0x3f69_1ab3_e626_c0b8);
    assert_eq!(t.evaluations, 1);
    assert_eq!(t.last_eval_cycles, 14_296_368);
    assert_eq!(t.busy_cycles, 30_652_656);
}

#[test]
fn seed_golden_ring_loss() {
    // The same seed as `seed_golden_multi_core`, computed by a two-card ring
    // (one core each — the per-tile arithmetic is split-invariant, so the
    // forces hash is the same golden) with card 1 falling off the bus on its
    // first launch and a spare taking over mid-evaluation. Failover must be
    // invisible to the physics AND keep the forces pinned to the golden.
    use tensix::fault::FaultClass;

    let (n, seed, eps) = (2560usize, 91u64, 0.02f64);
    let sys = plummer(PlummerConfig { n, seed, ..PlummerConfig::default() });
    let devices =
        vec![Device::new(0, DeviceConfig::default()), Device::new(1, DeviceConfig::default())];
    devices[1].faults().schedule(FaultClass::DeviceLoss, 1);
    let spare = Device::new(9, DeviceConfig::default());
    let ring = MultiDevicePipeline::with_spares(&devices, &[spare], n, eps, 1).unwrap();
    let f = ring.evaluate_checked(&sys).unwrap();
    assert_eq!(forces_hash(&f), 0x3978_aee1_c9f4_4781);
    assert_eq!(
        f.acc[0].map(f64::to_bits),
        [4604718705299947520, 13827545320499707904, 13825608754642550784]
    );
    let t = ring.timing();
    assert_eq!(t.failovers, 1);
    assert_eq!(t.evaluations, 1);
    assert!(t.comm_seconds > 0.0);
    assert_eq!(t.pipeline.evaluations, 2, "surviving card + promoted spare");
}
