//! Per-backend circuit breaker: quarantine repeatedly-faulting hardware.
//!
//! A backend that keeps killing jobs is worse than a missing backend — it
//! burns retry budgets and checkpoint-restore time on work that will fail
//! again. The breaker counts *consecutive* terminal faults per backend;
//! at the threshold the backend is quarantined (closed to dispatch) for an
//! exponentially growing window, then re-enters on probation: one job is
//! allowed through, a success fully closes the breaker, another terminal
//! fault re-quarantines immediately with a doubled window. All state is
//! driven by the server's virtual clock, so breaker decisions replay
//! exactly.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive terminal faults that trip the breaker.
    pub threshold: u32,
    /// First quarantine window, virtual seconds. Each successive
    /// quarantine of the same backend doubles it.
    pub quarantine_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { threshold: 2, quarantine_s: 30.0 }
    }
}

/// Where one backend stands with the breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Dispatchable, no strikes outstanding.
    Closed,
    /// Dispatchable, but carrying `strikes` consecutive terminal faults.
    Strained {
        /// Consecutive terminal faults so far.
        strikes: u32,
    },
    /// Closed to dispatch until the given virtual time.
    Quarantined {
        /// Virtual time at which probation begins.
        until_s: f64,
    },
    /// Re-opened for exactly one trial job.
    Probation,
}

/// Breaker ledger for one backend.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Times this backend has been quarantined (scales the window).
    pub trips: u32,
}

impl Breaker {
    /// New closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breaker { config, state: BreakerState::Closed, trips: 0 }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a job be dispatched here at virtual time `now_s`?
    #[must_use]
    pub fn admits(&self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::Strained { .. } | BreakerState::Probation => true,
            BreakerState::Quarantined { until_s } => now_s >= until_s,
        }
    }

    /// A quarantine window elapsed: move to probation (no-op otherwise).
    pub fn tick(&mut self, now_s: f64) {
        if let BreakerState::Quarantined { until_s } = self.state {
            if now_s >= until_s {
                self.state = BreakerState::Probation;
            }
        }
    }

    /// Record a completed job: closes the breaker fully.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
    }

    /// Record a terminal fault at virtual time `now_s`. Returns the
    /// quarantine-end time if this fault tripped the breaker.
    pub fn record_fault(&mut self, now_s: f64) -> Option<f64> {
        let strikes = match self.state {
            // A probation failure trips immediately, whatever the count.
            BreakerState::Probation => self.config.threshold,
            BreakerState::Strained { strikes } => strikes + 1,
            _ => 1,
        };
        if strikes >= self.config.threshold {
            let window = self.config.quarantine_s * f64::from(1u32 << self.trips.min(16));
            self.trips += 1;
            let until_s = now_s + window;
            self.state = BreakerState::Quarantined { until_s };
            Some(until_s)
        } else {
            self.state = BreakerState::Strained { strikes };
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_at_threshold_and_backs_off_exponentially() {
        let mut b = Breaker::new(BreakerConfig { threshold: 2, quarantine_s: 10.0 });
        assert!(b.admits(0.0));
        assert_eq!(b.record_fault(1.0), None);
        assert_eq!(b.state(), BreakerState::Strained { strikes: 1 });
        let until = b.record_fault(2.0).expect("second strike trips");
        assert!((until - 12.0).abs() < 1e-12);
        assert!(!b.admits(5.0) && b.admits(12.0));

        // Probation failure: immediate re-trip with a doubled window.
        b.tick(12.0);
        assert_eq!(b.state(), BreakerState::Probation);
        let until = b.record_fault(12.5).expect("probation failure re-trips");
        assert!((until - 32.5).abs() < 1e-12, "doubled window, got {until}");
        assert_eq!(b.trips, 2);
    }

    #[test]
    fn success_closes_fully_from_strain_and_probation() {
        let mut b = Breaker::new(BreakerConfig { threshold: 3, quarantine_s: 5.0 });
        b.record_fault(0.0);
        b.record_fault(0.5);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // The strike count restarts: three fresh faults to trip.
        assert_eq!(b.record_fault(1.0), None);
        assert_eq!(b.record_fault(1.1), None);
        assert!(b.record_fault(1.2).is_some());

        let mut b = Breaker::new(BreakerConfig::default());
        b.record_fault(0.0);
        b.record_fault(0.1);
        b.tick(1e9);
        assert_eq!(b.state(), BreakerState::Probation);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
