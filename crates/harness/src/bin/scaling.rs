//! Experiment E6 — the paper's stated next step: strong and weak scaling
//! over multiple Wormhole cards connected by 200 Gb/s Ethernet links,
//! estimated from the calibrated model (devices split the Fig.-2 outer loop;
//! results are all-gathered around the ring each step).

use std::fs;
use std::path::Path;

use tt_harness::{default_run, run_scaling};

fn main() {
    let run = default_run();
    let result = run_scaling(&run);

    println!("=== E6: multi-device scaling (paper §5 perspectives) ===\n");
    println!("strong scaling, N = {}:", run.n);
    println!("  devices | time (s) | speedup | efficiency");
    let t1 = result.strong[0].1;
    for (d, t) in &result.strong {
        println!("  {d:>7} | {t:>8.1} | {:>7.2} | {:>9.1}%", t1 / t, 100.0 * t1 / t / *d as f64);
    }

    println!("\nweak scaling (pair work per device held constant, N grows as sqrt(devices)):");
    println!("  devices |       N | time (s) | efficiency");
    let tw1 = result.weak[0].2;
    for (d, n, t) in &result.weak {
        println!("  {d:>7} | {n:>7} | {t:>8.1} | {:>9.1}%", 100.0 * tw1 / t);
    }

    fs::create_dir_all("results").ok();
    let mut csv = String::from("mode,devices,n,time_s\n");
    for (d, t) in &result.strong {
        csv.push_str(&format!("strong,{d},{},{t:.3}\n", run.n));
    }
    for (d, n, t) in &result.weak {
        csv.push_str(&format!("weak,{d},{n},{t:.3}\n"));
    }
    fs::write(Path::new("results/scaling.csv"), csv).ok();
    println!("\nraw data written to results/scaling.csv");
}
